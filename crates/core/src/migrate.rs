//! The hottest-coldest swap algorithm (Section III-A).
//!
//! Three designs:
//!
//! * **N** — every slot is used; a swap copies whole pages through a
//!   hardware buffer and *halts execution* until it completes (the paper's
//!   strawman: "it will halt the execution and incur unacceptable
//!   performance overhead" at large granularity).
//! * **N-1** — one slot is sacrificed (the empty slot, its page parked at
//!   the ghost location Ω). The four case-specific copy sequences of
//!   Fig. 8(a)-(d) keep *every page addressable at all times*: "during the
//!   data migration procedure, the data under movement has two physical
//!   locations". The hot page is conservatively served from its old (slow)
//!   location until its copy step completes.
//! * **Live Migration** — N-1 plus the F bit and sub-block bitmap of
//!   Fig. 9: each 4 KB sub-block becomes servable from the fast region the
//!   moment it lands, and copying starts from the MRU sub-block
//!   (critical-data-first) before wrapping around.
//!
//! The engine is a pure state machine: the controller feeds it candidates
//! and completion events; it emits sub-block transfer requests and applies
//! translation-table updates at exactly the step boundaries the paper
//! prescribes.

use crate::table::{MachinePage, RowState, TranslationTable};
use hmm_sim_base::addr::SubBlockId;
use hmm_sim_base::fxhash::FxHashMap;
use hmm_telemetry::{PfBit, PfChange};

/// Which migration design is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDesign {
    /// Basic design: all N slots used, execution halts during a swap.
    N,
    /// One sacrificed slot + P bit; no partial-page access.
    NMinusOne,
    /// N-1 plus F bit + sub-block bitmap (critical-data-first).
    LiveMigration,
}

impl MigrationDesign {
    /// Does this design stall demand accesses while a swap is in flight?
    pub fn halts(&self) -> bool {
        matches!(self, MigrationDesign::N)
    }

    /// Does this design use the N-1 empty-slot machinery?
    pub fn sacrifices_slot(&self) -> bool {
        !matches!(self, MigrationDesign::N)
    }
}

/// What kind of work a [`Transfer`] is doing, so the controller can
/// exempt recovery traffic from fault injection (recovery copies are
/// modelled fault-free: retrying a rollback would recurse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferKind {
    /// A normal forward swap copy; eligible for injected faults.
    Forward,
    /// A compensating copy of an abort rollback.
    Rollback,
    /// A copy of a quarantine drain.
    Drain,
}

/// A sub-block copy request emitted by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Opaque token to return via [`MigrationEngine::transfer_done`].
    pub token: u64,
    /// Source macro-page-sized machine location.
    pub src: MachinePage,
    /// Destination machine location.
    pub dst: MachinePage,
    /// Sub-block index within the page.
    pub sub: u32,
    /// Forward, rollback or drain traffic.
    pub kind: TransferKind,
    /// Retry attempt (0 for first issue; retries from
    /// [`MigrationEngine::transfer_failed`] count up from 1).
    pub attempt: u32,
}

/// Progress report from [`MigrationEngine::transfer_done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapProgress {
    /// More transfers outstanding in the current step.
    InFlight,
    /// A step boundary was crossed (table updated).
    StepDone,
    /// The whole swap finished; the engine is idle again.
    SwapDone,
    /// An abort rollback finished: the table is back in its pre-swap
    /// state and the engine is idle again.
    RollbackDone,
    /// A quarantine drain finished: `slot` is retired and its page now
    /// lives at the reserved spare page `parked`.
    DrainDone {
        /// The quarantined slot.
        slot: u32,
        /// Machine page the slot's own page was parked to.
        parked: u64,
    },
}

/// What [`MigrationEngine::transfer_failed`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Re-issue this transfer (the engine still counts the sub-block as
    /// outstanding; `attempt` in the transfer says how many retries so
    /// far).
    Retry(Transfer),
    /// The retry budget is exhausted; completed steps are being unwound
    /// by a rollback plan now active in the engine — pump its transfers.
    RollbackStarted,
    /// The swap was abandoned and the engine is idle; any table changes
    /// were undone by begin-op inverses alone (or, in the halting N
    /// design, were never applied).
    Aborted,
}

/// Counters for reporting and the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Swaps started.
    pub triggered: u64,
    /// Swaps fully completed.
    pub completed: u64,
    /// Paper Fig. 8 case counts: (a), (b), (c), (d).
    pub case_counts: [u64; 4],
    /// Sub-block copies performed (each is one read + one write of a
    /// sub-block). Includes rollback and drain copies.
    pub sub_blocks_copied: u64,
    /// Swaps aborted after exhausting their transfer-retry budget.
    pub aborted: u64,
    /// Sub-block copies performed by abort rollbacks (also counted in
    /// `sub_blocks_copied`).
    pub rolled_back_sub_blocks: u64,
    /// Quarantine drains completed (slots retired from the pool).
    pub quarantine_drains: u64,
}

impl SwapStats {
    /// Fold another counter set into this one (the workspace-wide merge
    /// convention, mirroring `RunningMean::merge`). Used when joining
    /// parallel sweep shards.
    pub fn merge(&mut self, other: &SwapStats) {
        self.triggered += other.triggered;
        self.completed += other.completed;
        for (a, b) in self.case_counts.iter_mut().zip(other.case_counts.iter()) {
            *a += b;
        }
        self.sub_blocks_copied += other.sub_blocks_copied;
        self.aborted += other.aborted;
        self.rolled_back_sub_blocks += other.rolled_back_sub_blocks;
        self.quarantine_drains += other.quarantine_drains;
    }
}

#[derive(Debug, Clone)]
enum TableOp {
    SuppressCam(u32),
    BeginFillEmpty { slot: u32, page: u64, source: MachinePage },
    BeginRestoreOwn { slot: u32, source: MachinePage },
    ClearP(u32),
    SetP(u32),
    RetireToEmpty(u32),
    SetSwapped { slot: u32, page: u64 },
    SetOwn(u32),
    // Rollback inverses of the begin-ops above.
    UnsuppressCam(u32),
    AbortFillEmpty(u32),
    AbortRestoreOwn { slot: u32, partner: u64 },
    // Quarantine drains.
    SetPParked { slot: u32, spare: u64 },
    QuarantineRow { slot: u32, spare: u64 },
}

#[derive(Debug, Clone)]
struct CopyStep {
    src: MachinePage,
    dst: MachinePage,
    begin: Vec<TableOp>,
    end: Vec<TableOp>,
    /// Slot whose fill bitmap tracks this step's arrivals.
    fill_slot: Option<u32>,
}

/// Whether the active step list is a forward swap, a compensating
/// rollback, or a quarantine drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SwapMode {
    Forward,
    Rollback,
    Drain { slot: u32, parked: u64 },
}

#[derive(Debug)]
struct ActiveSwap {
    steps: Vec<CopyStep>,
    step: usize,
    issued: u32,
    done: u32,
    /// Critical-data-first rotation offset.
    start_sub: u32,
    mode: SwapMode,
    /// Per-sub-block retry counts for the current step (cleared at step
    /// boundaries).
    retries: FxHashMap<u32, u32>,
}

/// The migration state machine.
#[derive(Debug)]
pub struct MigrationEngine {
    design: MigrationDesign,
    sub_blocks_per_page: u32,
    active: Option<ActiveSwap>,
    stats: SwapStats,
    /// When set, P/F-bit transitions are appended to `pf_log`. The engine
    /// is clock-free, so the controller drains the log and stamps cycles.
    log_pf: bool,
    pf_log: Vec<PfChange>,
}

impl MigrationEngine {
    /// Build an engine. `sub_blocks_per_page` is the transfer granularity
    /// (page size / sub-block size; 1 if the page is one sub-block).
    pub fn new(design: MigrationDesign, sub_blocks_per_page: u32) -> Self {
        assert!(sub_blocks_per_page >= 1);
        Self {
            design,
            sub_blocks_per_page,
            active: None,
            stats: SwapStats::default(),
            log_pf: false,
            pf_log: Vec::new(),
        }
    }

    /// Enable or disable P/F-transition logging (off by default; the
    /// controller turns it on when its telemetry sink wants the events).
    pub fn set_pf_logging(&mut self, on: bool) {
        self.log_pf = on;
    }

    /// Take the accumulated P/F transitions, in application order.
    pub fn drain_pf_log(&mut self) -> Vec<PfChange> {
        std::mem::take(&mut self.pf_log)
    }

    /// The active design.
    pub fn design(&self) -> MigrationDesign {
        self.design
    }

    /// Serialize the engine's dynamic state (snapshot/resume support):
    /// counters, the P/F log, and the full in-flight swap (steps with
    /// their begin/end table-op scripts, progress cursors, mode, and
    /// per-sub-block retry counts — written in sorted key order so the
    /// same state always produces the same bytes).
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        let op = |w: &mut hmm_sim_base::snap::SnapWriter, o: &TableOp| match *o {
            TableOp::SuppressCam(s) => {
                w.u8(0);
                w.u32(s);
            }
            TableOp::BeginFillEmpty { slot, page, source } => {
                w.u8(1);
                w.u32(slot);
                w.u64(page);
                w.u64(source.0);
            }
            TableOp::BeginRestoreOwn { slot, source } => {
                w.u8(2);
                w.u32(slot);
                w.u64(source.0);
            }
            TableOp::ClearP(s) => {
                w.u8(3);
                w.u32(s);
            }
            TableOp::SetP(s) => {
                w.u8(4);
                w.u32(s);
            }
            TableOp::RetireToEmpty(s) => {
                w.u8(5);
                w.u32(s);
            }
            TableOp::SetSwapped { slot, page } => {
                w.u8(6);
                w.u32(slot);
                w.u64(page);
            }
            TableOp::SetOwn(s) => {
                w.u8(7);
                w.u32(s);
            }
            TableOp::UnsuppressCam(s) => {
                w.u8(8);
                w.u32(s);
            }
            TableOp::AbortFillEmpty(s) => {
                w.u8(9);
                w.u32(s);
            }
            TableOp::AbortRestoreOwn { slot, partner } => {
                w.u8(10);
                w.u32(slot);
                w.u64(partner);
            }
            TableOp::SetPParked { slot, spare } => {
                w.u8(11);
                w.u32(slot);
                w.u64(spare);
            }
            TableOp::QuarantineRow { slot, spare } => {
                w.u8(12);
                w.u32(slot);
                w.u64(spare);
            }
        };
        w.u64(self.stats.triggered);
        w.u64(self.stats.completed);
        w.u64s(&self.stats.case_counts);
        w.u64(self.stats.sub_blocks_copied);
        w.u64(self.stats.aborted);
        w.u64(self.stats.rolled_back_sub_blocks);
        w.u64(self.stats.quarantine_drains);
        w.seq(&self.pf_log, |w, c| {
            w.u32(c.slot);
            w.u8(match c.bit {
                PfBit::P => 0,
                PfBit::F => 1,
            });
            w.bool(c.set);
        });
        match &self.active {
            None => w.bool(false),
            Some(swap) => {
                w.bool(true);
                w.seq(&swap.steps, |w, s| {
                    w.u64(s.src.0);
                    w.u64(s.dst.0);
                    w.seq(&s.begin, op);
                    w.seq(&s.end, op);
                    match s.fill_slot {
                        None => w.bool(false),
                        Some(fs) => {
                            w.bool(true);
                            w.u32(fs);
                        }
                    }
                });
                w.usize(swap.step);
                w.u32(swap.issued);
                w.u32(swap.done);
                w.u32(swap.start_sub);
                match swap.mode {
                    SwapMode::Forward => w.u8(0),
                    SwapMode::Rollback => w.u8(1),
                    SwapMode::Drain { slot, parked } => {
                        w.u8(2);
                        w.u32(slot);
                        w.u64(parked);
                    }
                }
                let mut retries: Vec<(u32, u32)> =
                    swap.retries.iter().map(|(&k, &v)| (k, v)).collect();
                retries.sort_unstable();
                w.usize(retries.len());
                for (k, v) in retries {
                    w.u32(k);
                    w.u32(v);
                }
            }
        }
    }

    /// Restore engine state saved by [`MigrationEngine::save_state`] onto
    /// a freshly constructed engine for the same design.
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        let op = |r: &mut hmm_sim_base::snap::SnapReader<'_>| -> hmm_sim_base::snap::SnapResult<TableOp> {
            Ok(match r.u8()? {
                0 => TableOp::SuppressCam(r.u32()?),
                1 => TableOp::BeginFillEmpty {
                    slot: r.u32()?,
                    page: r.u64()?,
                    source: MachinePage(r.u64()?),
                },
                2 => TableOp::BeginRestoreOwn { slot: r.u32()?, source: MachinePage(r.u64()?) },
                3 => TableOp::ClearP(r.u32()?),
                4 => TableOp::SetP(r.u32()?),
                5 => TableOp::RetireToEmpty(r.u32()?),
                6 => TableOp::SetSwapped { slot: r.u32()?, page: r.u64()? },
                7 => TableOp::SetOwn(r.u32()?),
                8 => TableOp::UnsuppressCam(r.u32()?),
                9 => TableOp::AbortFillEmpty(r.u32()?),
                10 => TableOp::AbortRestoreOwn { slot: r.u32()?, partner: r.u64()? },
                11 => TableOp::SetPParked { slot: r.u32()?, spare: r.u64()? },
                12 => TableOp::QuarantineRow { slot: r.u32()?, spare: r.u64()? },
                t => return Err(format!("invalid table-op tag {t}")),
            })
        };
        self.stats.triggered = r.u64()?;
        self.stats.completed = r.u64()?;
        let cases = r.u64s()?;
        self.stats.case_counts =
            cases.try_into().map_err(|_| "case_counts must hold 4 entries".to_string())?;
        self.stats.sub_blocks_copied = r.u64()?;
        self.stats.aborted = r.u64()?;
        self.stats.rolled_back_sub_blocks = r.u64()?;
        self.stats.quarantine_drains = r.u64()?;
        self.pf_log = r.seq(|r| {
            let slot = r.u32()?;
            let bit = match r.u8()? {
                0 => PfBit::P,
                1 => PfBit::F,
                t => return Err(format!("invalid pf-bit tag {t}")),
            };
            let set = r.bool()?;
            Ok(PfChange { slot, bit, set })
        })?;
        self.active = if r.bool()? {
            let steps = r.seq(|r| {
                let src = MachinePage(r.u64()?);
                let dst = MachinePage(r.u64()?);
                let begin = r.seq(op)?;
                let end = r.seq(op)?;
                let fill_slot = if r.bool()? { Some(r.u32()?) } else { None };
                Ok(CopyStep { src, dst, begin, end, fill_slot })
            })?;
            let step = r.usize()?;
            let issued = r.u32()?;
            let done = r.u32()?;
            let start_sub = r.u32()?;
            let mode = match r.u8()? {
                0 => SwapMode::Forward,
                1 => SwapMode::Rollback,
                2 => SwapMode::Drain { slot: r.u32()?, parked: r.u64()? },
                t => return Err(format!("invalid swap-mode tag {t}")),
            };
            let n = r.seq_len(8)?;
            let mut retries = FxHashMap::default();
            for _ in 0..n {
                let k = r.u32()?;
                let v = r.u32()?;
                retries.insert(k, v);
            }
            Some(ActiveSwap { steps, step, issued, done, start_sub, mode, retries })
        } else {
            None
        };
        Ok(())
    }

    /// Is a swap in flight? ("The existence of P bit and F bit prevents
    /// triggering another swap if the previous swap is not complete yet.")
    pub fn busy(&self) -> bool {
        self.active.is_some()
    }

    /// Must demand traffic stall right now? (N design only.)
    pub fn halting(&self) -> bool {
        self.design.halts() && self.busy()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SwapStats {
        self.stats
    }

    /// Bitmap granularity: per sub-block for live migration, a single
    /// all-or-nothing bit otherwise (the conservative N-1 routing).
    fn bitmap_bits(&self) -> u32 {
        match self.design {
            MigrationDesign::LiveMigration => self.sub_blocks_per_page,
            _ => 1,
        }
    }

    /// Try to start a hottest-coldest swap bringing `hot` on-package and
    /// evicting the occupant of `cold_slot`. `hot_sub_hint` is the
    /// sub-block of the access that made the page MRU (critical-data-first
    /// start position). Returns false if the candidate pair is not
    /// migratable (wrong states) or the engine is busy.
    pub fn start_swap(
        &mut self,
        table: &mut TranslationTable,
        hot: u64,
        cold_slot: u32,
        hot_sub_hint: u32,
    ) -> bool {
        if self.busy() {
            return false;
        }
        let n = table.slots();
        if table.is_reserved(hot) {
            return false; // ghost and spare pages are not program pages
        }

        // Classify the hot page.
        let hot_kind = if hot >= n {
            if table.cam_lookup(hot).is_some() {
                return false; // already on-package
            }
            HotKind::Os
        } else {
            match table.row_state(hot as u32) {
                RowState::Swapped(e) => HotKind::Ms { partner: e },
                _ => return false, // OF (already fast) or Ghost
            }
        };

        // Classify the cold slot.
        if matches!(hot_kind, HotKind::Ms { .. }) && cold_slot as u64 == hot {
            return false; // the hot page's own row cannot be the victim
        }
        let cold_kind = table.row_state(cold_slot);
        if cold_kind == RowState::Empty {
            return false;
        }

        let home = MachinePage;
        let slot = |s: u32| MachinePage(s as u64);
        let ghost = table.ghost();

        let steps: Vec<CopyStep> = if self.design.sacrifices_slot() {
            let s_e = table.empty_slot().expect("N-1 table always has an empty slot");
            if s_e == cold_slot {
                return false;
            }
            match (hot_kind, cold_kind) {
                // Fig. 8(a): OS in, OF out.
                (HotKind::Os, RowState::Own) => {
                    self.stats.case_counts[0] += 1;
                    vec![
                        CopyStep {
                            src: home(hot),
                            dst: slot(s_e),
                            begin: vec![TableOp::BeginFillEmpty {
                                slot: s_e,
                                page: hot,
                                source: home(hot),
                            }],
                            end: vec![],
                            fill_slot: Some(s_e),
                        },
                        CopyStep {
                            src: ghost,
                            dst: home(hot),
                            begin: vec![],
                            end: vec![TableOp::ClearP(s_e)],
                            fill_slot: None,
                        },
                        CopyStep {
                            src: slot(cold_slot),
                            dst: ghost,
                            begin: vec![],
                            end: vec![TableOp::RetireToEmpty(cold_slot)],
                            fill_slot: None,
                        },
                    ]
                }
                // Fig. 8(b): OS in, MF out.
                (HotKind::Os, RowState::Swapped(d)) => {
                    self.stats.case_counts[1] += 1;
                    vec![
                        CopyStep {
                            src: home(hot),
                            dst: slot(s_e),
                            begin: vec![TableOp::BeginFillEmpty {
                                slot: s_e,
                                page: hot,
                                source: home(hot),
                            }],
                            end: vec![],
                            fill_slot: Some(s_e),
                        },
                        CopyStep {
                            src: ghost,
                            dst: home(hot),
                            begin: vec![],
                            end: vec![TableOp::ClearP(s_e)],
                            fill_slot: None,
                        },
                        CopyStep {
                            src: home(d),
                            dst: ghost,
                            begin: vec![],
                            end: vec![TableOp::SetP(cold_slot)],
                            fill_slot: None,
                        },
                        CopyStep {
                            src: slot(cold_slot),
                            dst: home(d),
                            begin: vec![],
                            end: vec![TableOp::RetireToEmpty(cold_slot)],
                            fill_slot: None,
                        },
                    ]
                }
                // Fig. 8(c): MS in, OF out.
                (HotKind::Ms { partner }, RowState::Own) => {
                    self.stats.case_counts[2] += 1;
                    Self::ms_in_steps(hot, partner, cold_slot, s_e, ghost, None)
                }
                // Fig. 8(d): MS in, MF out.
                (HotKind::Ms { partner }, RowState::Swapped(d)) => {
                    self.stats.case_counts[3] += 1;
                    Self::ms_in_steps(hot, partner, cold_slot, s_e, ghost, Some(d))
                }
                (_, RowState::Empty) => unreachable!("checked above"),
            }
        } else {
            // The halting N design: whole-page copies through a buffer,
            // table updated only at the very end.
            self.n_design_steps(hot, &hot_kind, cold_slot, cold_kind)
        };

        // Apply the first step's table updates.
        let swap = ActiveSwap {
            steps,
            step: 0,
            issued: 0,
            done: 0,
            start_sub: hot_sub_hint % self.sub_blocks_per_page,
            mode: SwapMode::Forward,
            retries: FxHashMap::default(),
        };
        let bits = self.bitmap_bits();
        let log = self.log_pf;
        for op in swap.steps[0].begin.clone() {
            Self::apply(table, op, bits, log.then_some(&mut self.pf_log));
        }
        self.active = Some(swap);
        self.stats.triggered += 1;
        self.dbg_validate(table);
        true
    }

    /// Shared step list for Fig. 8(c)/(d): bring an MS page home, relocate
    /// its partner into the empty slot, then evict the cold slot.
    /// `cold_mf` is the cold slot's MF occupant for case (d), `None` for
    /// the OF-victim case (c).
    fn ms_in_steps(
        hot: u64,
        partner: u64,
        cold_slot: u32,
        s_e: u32,
        ghost: MachinePage,
        cold_mf: Option<u64>,
    ) -> Vec<CopyStep> {
        let home = MachinePage;
        let slot = |s: u32| MachinePage(s as u64);
        let hot_slot = hot as u32;
        let mut steps = vec![
            // 1: partner's data (in the hot page's row) moves to the empty
            //    slot; its CAM entry migrates there too.
            CopyStep {
                src: slot(hot_slot),
                dst: slot(s_e),
                begin: vec![
                    TableOp::SuppressCam(hot_slot),
                    TableOp::BeginFillEmpty { slot: s_e, page: partner, source: slot(hot_slot) },
                ],
                end: vec![],
                fill_slot: Some(s_e),
            },
            // 2: the hot page returns to its own slot from the partner's
            //    home.
            CopyStep {
                src: home(partner),
                dst: slot(hot_slot),
                begin: vec![TableOp::BeginRestoreOwn { slot: hot_slot, source: home(partner) }],
                end: vec![],
                fill_slot: Some(hot_slot),
            },
            // 3: the ghost data parks at the partner's (now free) home.
            CopyStep {
                src: ghost,
                dst: home(partner),
                begin: vec![],
                end: vec![TableOp::ClearP(s_e)],
                fill_slot: None,
            },
        ];
        if let Some(d) = cold_mf {
            // (d): the cold slot's own page (parked at home(d)) moves to
            // Ω, then the MF occupant d drains to its own home.
            steps.push(CopyStep {
                src: home(d),
                dst: ghost,
                begin: vec![],
                end: vec![TableOp::SetP(cold_slot)],
                fill_slot: None,
            });
            steps.push(CopyStep {
                src: slot(cold_slot),
                dst: home(d),
                begin: vec![],
                end: vec![TableOp::RetireToEmpty(cold_slot)],
                fill_slot: None,
            });
        } else {
            // (c): the cold OF page parks at Ω.
            steps.push(CopyStep {
                src: slot(cold_slot),
                dst: ghost,
                begin: vec![],
                end: vec![TableOp::RetireToEmpty(cold_slot)],
                fill_slot: None,
            });
        }
        steps
    }

    /// Step list for the halting N design.
    fn n_design_steps(
        &mut self,
        hot: u64,
        hot_kind: &HotKind,
        cold_slot: u32,
        cold_kind: RowState,
    ) -> Vec<CopyStep> {
        let home = MachinePage;
        let slot = |s: u32| MachinePage(s as u64);
        let mut copies: Vec<(MachinePage, MachinePage)> = Vec::new();
        let mut end: Vec<TableOp> = Vec::new();
        match (hot_kind.partner(), cold_kind) {
            (None, RowState::Own) => {
                self.stats.case_counts[0] += 1;
                copies.push((slot(cold_slot), home(hot)));
                copies.push((home(hot), slot(cold_slot)));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: hot });
            }
            (None, RowState::Swapped(d)) => {
                self.stats.case_counts[1] += 1;
                copies.push((slot(cold_slot), home(d)));
                copies.push((home(d), home(hot)));
                copies.push((home(hot), slot(cold_slot)));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: hot });
            }
            (Some(e), RowState::Own) => {
                self.stats.case_counts[2] += 1;
                copies.push((slot(hot as u32), slot(cold_slot)));
                copies.push((slot(cold_slot), home(e)));
                copies.push((home(e), slot(hot as u32)));
                end.push(TableOp::SetOwn(hot as u32));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: e });
            }
            (Some(e), RowState::Swapped(d)) => {
                self.stats.case_counts[3] += 1;
                copies.push((slot(cold_slot), home(d)));
                copies.push((home(d), home(e)));
                copies.push((slot(hot as u32), slot(cold_slot)));
                copies.push((home(e), slot(hot as u32)));
                end.push(TableOp::SetOwn(hot as u32));
                end.push(TableOp::SetSwapped { slot: cold_slot, page: e });
            }
            (_, RowState::Empty) => unreachable!("N tables have no empty slot"),
        }
        let last = copies.len() - 1;
        copies
            .into_iter()
            .enumerate()
            .map(|(i, (src, dst))| CopyStep {
                src,
                dst,
                begin: vec![],
                end: if i == last { std::mem::take(&mut end) } else { vec![] },
                fill_slot: None,
            })
            .collect()
    }

    fn apply(
        table: &mut TranslationTable,
        op: TableOp,
        bitmap_bits: u32,
        log: Option<&mut Vec<PfChange>>,
    ) {
        let note = |log: Option<&mut Vec<PfChange>>, slot: u32, bit: PfBit, set: bool| {
            if let Some(log) = log {
                log.push(PfChange { slot, bit, set });
            }
        };
        match op {
            TableOp::SuppressCam(s) => table.suppress_cam(s),
            TableOp::BeginFillEmpty { slot, page, source } => {
                table.begin_fill_into_empty(slot, page, source, bitmap_bits);
                if let Some(log) = log {
                    log.push(PfChange { slot, bit: PfBit::P, set: true });
                    log.push(PfChange { slot, bit: PfBit::F, set: true });
                }
            }
            TableOp::BeginRestoreOwn { slot, source } => {
                table.begin_restore_own(slot, source, bitmap_bits);
                note(log, slot, PfBit::F, true);
            }
            TableOp::ClearP(s) => {
                table.clear_p(s);
                note(log, s, PfBit::P, false);
            }
            TableOp::SetP(s) => {
                table.set_p(s);
                note(log, s, PfBit::P, true);
            }
            TableOp::RetireToEmpty(s) => {
                let was_pending = table.p_bit(s);
                table.retire_to_empty(s);
                if was_pending {
                    note(log, s, PfBit::P, false);
                }
            }
            TableOp::SetSwapped { slot, page } => table.set_swapped(slot, page),
            TableOp::SetOwn(s) => table.set_own(s),
            TableOp::UnsuppressCam(s) => table.unsuppress_cam(s),
            TableOp::AbortFillEmpty(s) => {
                let had_fill = table.fill_state(s).is_some();
                table.abort_fill_into_empty(s);
                if let Some(log) = log {
                    if had_fill {
                        log.push(PfChange { slot: s, bit: PfBit::F, set: false });
                    }
                    log.push(PfChange { slot: s, bit: PfBit::P, set: false });
                }
            }
            TableOp::AbortRestoreOwn { slot, partner } => {
                let had_fill = table.fill_state(slot).is_some();
                table.abort_restore_own(slot, partner);
                if had_fill {
                    note(log, slot, PfBit::F, false);
                }
            }
            TableOp::SetPParked { slot, spare } => {
                table.set_p_parked(slot, MachinePage(spare));
                note(log, slot, PfBit::P, true);
            }
            TableOp::QuarantineRow { slot, spare } => {
                let was_pending = table.p_bit(slot);
                table.quarantine_row(slot, MachinePage(spare));
                if was_pending {
                    note(log, slot, PfBit::P, false);
                }
            }
        }
    }

    /// Invert a begin/end op for the abort rollback. Only ops that can
    /// appear before the final step need inverses: the final step's ops
    /// (`RetireToEmpty`, `SetSwapped`, `SetOwn`) commit the swap, and a
    /// completed final step means there is nothing left to abort.
    fn inverse(op: &TableOp) -> TableOp {
        match *op {
            TableOp::SuppressCam(s) => TableOp::UnsuppressCam(s),
            TableOp::BeginFillEmpty { slot, .. } => TableOp::AbortFillEmpty(slot),
            TableOp::BeginRestoreOwn { slot, source } => {
                TableOp::AbortRestoreOwn { slot, partner: source.0 }
            }
            TableOp::ClearP(s) => TableOp::SetP(s),
            TableOp::SetP(s) => TableOp::ClearP(s),
            _ => unreachable!("final-step ops never need inverting"),
        }
    }

    /// Debug-build invariant sweep after every table-op batch: panics if
    /// the translation table lost an invariant or stopped being injective
    /// over the program-visible pages.
    fn dbg_validate(&self, table: &TranslationTable) {
        #[cfg(debug_assertions)]
        if let Err(e) = table.validate(self.design.sacrifices_slot()) {
            panic!("translation-table invariant violated: {e}");
        }
        let _ = table;
    }

    /// Emit up to `allowance` new sub-block transfers for the current step
    /// (flow control: the controller limits outstanding copies so the
    /// copy engine does not flood the DRAM queues).
    pub fn take_transfers(&mut self, allowance: u32, out: &mut Vec<Transfer>) {
        let Some(swap) = &mut self.active else { return };
        let per_step = self.sub_blocks_per_page;
        let step = &swap.steps[swap.step];
        let kind = match swap.mode {
            SwapMode::Forward => TransferKind::Forward,
            SwapMode::Rollback => TransferKind::Rollback,
            SwapMode::Drain { .. } => TransferKind::Drain,
        };
        let mut issued = 0;
        while swap.issued < per_step && issued < allowance {
            let k = swap.issued;
            // Critical-data-first: rotate so the MRU sub-block copies
            // first ("starts to copy the macro page from the position of
            // the MRU sub-block and then wraps the address").
            let sub = (swap.start_sub + k) % per_step;
            out.push(Transfer {
                token: (swap.step as u64) << 32 | sub as u64,
                src: step.src,
                dst: step.dst,
                sub,
                kind,
                attempt: 0,
            });
            swap.issued += 1;
            issued += 1;
        }
    }

    /// Record completion of a transfer (both its read and write legs).
    pub fn transfer_done(&mut self, token: u64, table: &mut TranslationTable) -> SwapProgress {
        let bits = self.bitmap_bits();
        let log = self.log_pf;
        let live = matches!(self.design, MigrationDesign::LiveMigration);
        let swap = self.active.as_mut().expect("no swap in flight");
        let step_idx = (token >> 32) as usize;
        let sub = (token & 0xFFFF_FFFF) as u32;
        assert_eq!(step_idx, swap.step, "completion for a stale step");
        swap.done += 1;
        self.stats.sub_blocks_copied += 1;
        if swap.mode == SwapMode::Rollback {
            self.stats.rolled_back_sub_blocks += 1;
        }

        let step = &swap.steps[swap.step];
        if live {
            if let Some(slot) = step.fill_slot {
                table.mark_sub_block_filled(slot, SubBlockId(sub));
            }
        }
        if swap.done < self.sub_blocks_per_page {
            return SwapProgress::InFlight;
        }

        // Step complete.
        if !live {
            if let Some(slot) = step.fill_slot {
                // Conservative switch-over: the whole page becomes fast at
                // once.
                table.mark_sub_block_filled(slot, SubBlockId(0));
            }
        }
        if log {
            if let Some(slot) = step.fill_slot {
                // The fill finished: the F bit stops gating this slot.
                self.pf_log.push(PfChange { slot, bit: PfBit::F, set: false });
            }
        }
        for op in swap.steps[swap.step].end.clone() {
            Self::apply(table, op, bits, log.then_some(&mut self.pf_log));
        }
        swap.step += 1;
        swap.issued = 0;
        swap.done = 0;
        swap.retries.clear();
        let progress = if swap.step == swap.steps.len() {
            let mode = swap.mode;
            self.active = None;
            match mode {
                SwapMode::Forward => {
                    self.stats.completed += 1;
                    SwapProgress::SwapDone
                }
                SwapMode::Rollback => SwapProgress::RollbackDone,
                SwapMode::Drain { slot, parked } => {
                    self.stats.quarantine_drains += 1;
                    SwapProgress::DrainDone { slot, parked }
                }
            }
        } else {
            for op in swap.steps[swap.step].begin.clone() {
                Self::apply(table, op, bits, log.then_some(&mut self.pf_log));
            }
            SwapProgress::StepDone
        };
        self.dbg_validate(table);
        progress
    }

    /// Record that a transfer's copy failed in a way the data path could
    /// not hide (dropped request, timeout, uncorrectable read). The engine
    /// either hands back a retry of the same transfer (bounded by
    /// `max_retries` per sub-block per step) or aborts the swap. Aborting
    /// an N-1 swap installs a rollback plan — compensating copies that
    /// restore every touched machine page, with the inverse table ops
    /// applied at the matching reverse-step boundaries — and the caller
    /// keeps pumping [`Self::take_transfers`] /
    /// [`Self::transfer_done`] until [`SwapProgress::RollbackDone`].
    pub fn transfer_failed(
        &mut self,
        token: u64,
        table: &mut TranslationTable,
        max_retries: u32,
    ) -> FailureAction {
        {
            let swap = self.active.as_mut().expect("no swap in flight");
            let step_idx = (token >> 32) as usize;
            let sub = (token & 0xFFFF_FFFF) as u32;
            assert_eq!(step_idx, swap.step, "failure for a stale step");
            assert_eq!(
                swap.mode,
                SwapMode::Forward,
                "rollback and drain copies are modelled fault-free"
            );
            let attempts = swap.retries.entry(sub).or_insert(0);
            if *attempts < max_retries {
                *attempts += 1;
                let attempt = *attempts;
                let step = &swap.steps[swap.step];
                return FailureAction::Retry(Transfer {
                    token,
                    src: step.src,
                    dst: step.dst,
                    sub,
                    kind: TransferKind::Forward,
                    attempt,
                });
            }
        }
        // Retry budget exhausted: abort the swap.
        self.stats.aborted += 1;
        if !self.design.sacrifices_slot() {
            // The N design touches the table only at the final step's end,
            // and a failed transfer means that end was never reached:
            // dropping the swap leaves the table exactly as before.
            self.active = None;
            self.dbg_validate(table);
            return FailureAction::Aborted;
        }
        let bits = self.bitmap_bits();
        let log = self.log_pf;
        let swap = self.active.as_mut().expect("no swap in flight");
        let k = swap.step;
        // Undo the current (incomplete) step's begin ops right now. Partial
        // writes into its destination are harmless: after the inverses, no
        // translation points there (and for completed earlier steps the
        // reverse copies below rewrite their destinations before the
        // inverse ops re-point translations at them).
        for op in swap.steps[k].begin.clone().into_iter().rev() {
            Self::apply(table, Self::inverse(&op), bits, log.then_some(&mut self.pf_log));
        }
        // Completed steps are unwound in reverse: copy each step's data
        // back, then invert its end ops and begin ops.
        let rollback: Vec<CopyStep> = (0..k)
            .rev()
            .map(|j| {
                let f = &swap.steps[j];
                let mut end: Vec<TableOp> = f.end.iter().rev().map(Self::inverse).collect();
                end.extend(f.begin.iter().rev().map(Self::inverse));
                CopyStep { src: f.dst, dst: f.src, begin: vec![], end, fill_slot: None }
            })
            .collect();
        if rollback.is_empty() {
            // Failed during the first step: the inverses above already
            // restored the pre-swap table and no data moved anywhere a
            // translation still points at.
            self.active = None;
            self.dbg_validate(table);
            return FailureAction::Aborted;
        }
        swap.steps = rollback;
        swap.step = 0;
        swap.issued = 0;
        swap.done = 0;
        swap.start_sub = 0;
        swap.mode = SwapMode::Rollback;
        swap.retries.clear();
        self.dbg_validate(table);
        FailureAction::RollbackStarted
    }

    /// Begin draining `slot` out of the migration pool (graceful
    /// degradation after repeated uncorrectable errors). The slot's
    /// occupant is relocated so the slot can be marked quarantined: an
    /// `Own` page parks at a reserved spare page off-package; a `Swapped`
    /// guest first drains to its own home while the slot's own page takes
    /// the spare; an `Empty` slot steals the emptiness from a victim slot
    /// (so the N-1 machinery keeps its one empty slot). Returns false if
    /// the engine is busy, the design has no empty-slot machinery, the
    /// slot is already quarantined, or no spare page is left.
    pub fn start_quarantine(&mut self, table: &mut TranslationTable, slot: u32) -> bool {
        if self.busy() || !self.design.sacrifices_slot() {
            return false;
        }
        if table.is_quarantined(slot) || !table.spare_available() {
            return false;
        }
        let home = MachinePage;
        let slotp = |s: u32| MachinePage(s as u64);
        let ghost = table.ghost();

        // For an empty slot we must transplant the emptiness: pick a
        // victim row (prefer an Own occupant — one copy instead of two)
        // whose page moves to Ω, making the victim the new empty slot.
        let victim = if table.row_state(slot) == RowState::Empty {
            let n = table.slots() as u32;
            let pick = (0..n)
                .filter(|&v| v != slot && !table.is_quarantined(v))
                .filter(|&v| table.row_state(v) != RowState::Empty)
                .max_by_key(|&v| match table.row_state(v) {
                    RowState::Own => 1,
                    _ => 0,
                });
            match pick {
                Some(v) => Some(v),
                None => return false, // nothing left to sacrifice
            }
        } else {
            None
        };
        let Some(spare) = table.allocate_spare() else { return false };

        let mut steps: Vec<CopyStep> = Vec::new();
        match table.row_state(slot) {
            RowState::Own => {
                // The slot's own page escapes to the spare location.
                steps.push(CopyStep {
                    src: slotp(slot),
                    dst: spare,
                    begin: vec![],
                    end: vec![TableOp::QuarantineRow { slot, spare: spare.0 }],
                    fill_slot: None,
                });
            }
            RowState::Swapped(m) => {
                // The slot's own page (parked at home(m)) moves to the
                // spare; then guest m drains from the failing slot to its
                // own home.
                steps.push(CopyStep {
                    src: home(m),
                    dst: spare,
                    begin: vec![],
                    end: vec![TableOp::SetPParked { slot, spare: spare.0 }],
                    fill_slot: None,
                });
                steps.push(CopyStep {
                    src: slotp(slot),
                    dst: home(m),
                    begin: vec![],
                    end: vec![TableOp::QuarantineRow { slot, spare: spare.0 }],
                    fill_slot: None,
                });
            }
            RowState::Empty => {
                // The parked ghost data moves to the spare so Ω can take
                // the victim's page next.
                steps.push(CopyStep {
                    src: ghost,
                    dst: spare,
                    begin: vec![],
                    end: vec![TableOp::QuarantineRow { slot, spare: spare.0 }],
                    fill_slot: None,
                });
                let v = victim.expect("picked above");
                match table.row_state(v) {
                    RowState::Own => {
                        steps.push(CopyStep {
                            src: slotp(v),
                            dst: ghost,
                            begin: vec![],
                            end: vec![TableOp::RetireToEmpty(v)],
                            fill_slot: None,
                        });
                    }
                    RowState::Swapped(m) => {
                        // Same shape as the Fig. 8(b) tail: the victim's
                        // own page parks at Ω, then guest m drains home.
                        steps.push(CopyStep {
                            src: home(m),
                            dst: ghost,
                            begin: vec![],
                            end: vec![TableOp::SetP(v)],
                            fill_slot: None,
                        });
                        steps.push(CopyStep {
                            src: slotp(v),
                            dst: home(m),
                            begin: vec![],
                            end: vec![TableOp::RetireToEmpty(v)],
                            fill_slot: None,
                        });
                    }
                    RowState::Empty => unreachable!("victim filter excludes empties"),
                }
            }
        }

        self.active = Some(ActiveSwap {
            steps,
            step: 0,
            issued: 0,
            done: 0,
            start_sub: 0,
            mode: SwapMode::Drain { slot, parked: spare.0 },
            retries: FxHashMap::default(),
        });
        self.dbg_validate(table);
        true
    }
}

/// Classification of the hot (MRU) page at trigger time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HotKind {
    /// Original Slow: a high page at its own off-package home.
    Os,
    /// Migrated Slow: a low page displaced to its partner's home.
    Ms {
        /// The high page occupying the hot page's slot.
        partner: u64,
    },
}

impl HotKind {
    fn partner(&self) -> Option<u64> {
        match self {
            HotKind::Os => None,
            HotKind::Ms { partner } => Some(*partner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TranslationTable;
    use hmm_sim_base::addr::MacroPageId;

    // see below: tests drive full swaps synchronously.
    struct Harness {
        table: TranslationTable,
        engine: MigrationEngine,
    }

    impl Harness {
        fn new(design: MigrationDesign, subs: u32) -> Self {
            Self {
                table: TranslationTable::new(8, 32, design.sacrifices_slot()),
                engine: MigrationEngine::new(design, subs),
            }
        }

        /// Run a whole swap synchronously, returning true if it started.
        fn run_swap(&mut self, hot: u64, cold: u32) -> bool {
            if !self.engine.start_swap(&mut self.table, hot, cold, 0) {
                return false;
            }
            let mut guard = 0;
            while self.engine.busy() {
                let mut ts = Vec::new();
                self.engine.take_transfers(8, &mut ts);
                assert!(!ts.is_empty(), "engine busy but emitted no transfers");
                for t in ts {
                    self.engine.transfer_done(t.token, &mut self.table);
                }
                guard += 1;
                assert!(guard < 10_000, "swap did not converge");
            }
            true
        }

        fn loc(&self, page: u64) -> u64 {
            self.table.translate(MacroPageId(page), hmm_sim_base::addr::SubBlockId(0)).0
        }

        /// Drive the swap but fail the `fail_at`-th transfer (0-based)
        /// with a zero retry budget; pump whatever recovery plan results
        /// to completion.
        fn abort_at(&mut self, hot: u64, cold: u32, fail_at: usize) {
            assert!(self.engine.start_swap(&mut self.table, hot, cold, 0));
            let mut seen = 0usize;
            let mut guard = 0;
            while self.engine.busy() {
                let mut ts = Vec::new();
                self.engine.take_transfers(8, &mut ts);
                assert!(!ts.is_empty(), "engine busy but emitted no transfers");
                for t in ts {
                    if seen == fail_at {
                        let act = self.engine.transfer_failed(t.token, &mut self.table, 0);
                        assert!(!matches!(act, FailureAction::Retry(_)));
                        seen += 1;
                        break; // sibling tokens of the dead swap are stale
                    }
                    self.engine.transfer_done(t.token, &mut self.table);
                    seen += 1;
                }
                guard += 1;
                assert!(guard < 10_000, "abort recovery did not converge");
            }
        }

        /// Pump the active drain/swap to completion, returning the last
        /// progress report.
        fn pump(&mut self) -> SwapProgress {
            let mut last = SwapProgress::InFlight;
            let mut guard = 0;
            while self.engine.busy() {
                let mut ts = Vec::new();
                self.engine.take_transfers(8, &mut ts);
                assert!(!ts.is_empty(), "engine busy but emitted no transfers");
                for t in ts {
                    last = self.engine.transfer_done(t.token, &mut self.table);
                }
                guard += 1;
                assert!(guard < 10_000, "drain did not converge");
            }
            last
        }
    }

    fn snapshot(table: &TranslationTable) -> Vec<u64> {
        (0..table.first_reserved_page())
            .map(|p| table.translate(MacroPageId(p), hmm_sim_base::addr::SubBlockId(0)).0)
            .collect()
    }

    /// For one (setup, hot, cold) scenario, abort at every possible
    /// transfer and check the table rolls back to its pre-swap state.
    fn assert_abort_rolls_back(mk: impl Fn() -> Harness, hot: u64, cold: u32) {
        let total = {
            let mut probe = mk();
            let before = probe.engine.stats().sub_blocks_copied;
            assert!(probe.run_swap(hot, cold));
            (probe.engine.stats().sub_blocks_copied - before) as usize
        };
        for fail_at in 0..total {
            let mut h = mk();
            let aborted_before = h.engine.stats().aborted;
            let snap = snapshot(&h.table);
            h.abort_at(hot, cold, fail_at);
            assert!(!h.engine.busy());
            assert_eq!(snapshot(&h.table), snap, "translations differ after abort at {fail_at}");
            h.table.check_invariants(true, true).expect("post-rollback invariants");
            assert_eq!(h.engine.stats().aborted, aborted_before + 1);
        }
    }

    #[test]
    fn case_a_os_in_of_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        assert!(h.run_swap(20, 3));
        // Hot page 20 is on-package (in the former empty slot 7).
        assert_eq!(h.loc(20), 7);
        // Cold page 3 became the ghost.
        assert_eq!(h.loc(3), 31);
        // The displaced page 7 parks at 20's old home.
        assert_eq!(h.loc(7), 20);
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [1, 0, 0, 0]);
        // 3 steps x 4 sub-blocks.
        assert_eq!(h.engine.stats().sub_blocks_copied, 12);
    }

    #[test]
    fn case_b_os_in_mf_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 3)); // slot 7 now holds 20; empty is slot 3
        assert!(h.run_swap(21, 7)); // evict MF page 20 from slot 7
        assert_eq!(h.loc(21), 3, "new hot page lands in the former empty slot");
        assert_eq!(h.loc(20), 20, "evicted MF page drains to its own home");
        assert_eq!(h.loc(7), 31, "slot 7's own page is the new ghost");
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [1, 1, 0, 0]);
    }

    #[test]
    fn case_c_ms_in_of_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 3)); // page 3 ghosted; page 7 MS at home(20)
                                    // Page 7 is now MS (its row holds... nothing: retired). Build the
                                    // MS state the natural way: hot page 7 is at the ghost... actually
                                    // after case (a), page 7 parks at home(20): row 7 = Swapped(20).
        assert_eq!(h.loc(7), 20);
        // Bring MS page 7 back; evict OF page 2.
        assert!(h.run_swap(7, 2));
        assert_eq!(h.loc(7), 7, "MS page restored to its own slot");
        assert_eq!(h.loc(20), 3, "partner moved into the old empty slot");
        assert_eq!(h.loc(2), 31, "evicted OF page is the new ghost");
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [1, 0, 1, 0]);
    }

    #[test]
    fn case_d_ms_in_mf_out() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 3)); // case (a): 20 -> slot 7; page 3 ghosted
        assert!(h.run_swap(21, 5)); // case (a): 21 -> slot 3; page 5 ghosted
                                    // State now: slot 7 = 20 (MF), slot 3 = 21 (MF), page 5 ghosted,
                                    // empty = slot 5. Page 3 is MS at home(21), page 7 MS at home(20).
        assert_eq!(h.loc(3), 21);
        // Case (d): bring MS page 3 home, evicting MF page 20 (slot 7).
        assert!(h.run_swap(3, 7));
        assert_eq!(h.loc(3), 3, "MS page restored");
        assert_eq!(h.loc(21), 5, "partner 21 relocated to the empty slot");
        assert_eq!(h.loc(20), 20, "evicted MF page drains home");
        assert_eq!(h.loc(7), 31, "slot 7's page is the new ghost");
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.engine.stats().case_counts, [2, 0, 0, 1]);
    }

    #[test]
    fn paper_example_ten_step_walkthrough() {
        // Reproduce the exact scenario of the Fig. 8(d) example: A and B
        // are MS (swapped with D and E), C is the Ghost. MRU = B, LRU = D.
        // In our id space: slots 0..8; A=0, B=1, C=7 (ghost row), D=20,
        // E=21.
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.run_swap(20, 0)); // D into slot 7 -> then A... build state:
                                    // After swap 1: slot 7 = D(20), ghost = page 0 (A at Ω)... The
                                    // paper's exact slot assignments differ, but the reachable states
                                    // are equivalent up to slot renaming. Drive to the (d) shape:
        assert!(h.run_swap(21, 1)); // E in; evict OF page 1 (B) -> B ghost?
                                    // Regardless of intermediate naming, the final swap must satisfy
                                    // the paper's end-state properties:
        let hot = (0..8u64).find(|&p| {
            h.table.row_state(p as u32) == RowState::Swapped(20)
                || h.table.row_state(p as u32) == RowState::Swapped(21)
        });
        let hot = hot.expect("an MS page exists");
        // Find an MF victim slot different from the hot row.
        let victim = (0..8u32)
            .find(|&s| s as u64 != hot && matches!(h.table.row_state(s), RowState::Swapped(_)))
            .expect("an MF slot exists");
        let partner = match h.table.row_state(hot as u32) {
            RowState::Swapped(e) => e,
            _ => unreachable!(),
        };
        let evicted = h.table.occupant(victim).unwrap();
        assert!(h.run_swap(hot, victim));
        // End-state: the MRU page is on-package in its own slot; its
        // partner is on-package in the old empty slot; the LRU page is
        // fully off-package at its own home; the victim slot's own page is
        // the new Ghost.
        assert_eq!(h.loc(hot), hot);
        assert!(h.table.is_on_package(MachinePage(h.loc(partner))));
        assert_eq!(h.loc(evicted), evicted);
        assert_eq!(h.loc(victim as u64), 31);
        h.table.check_invariants(true, true).unwrap();
    }

    #[test]
    fn live_migration_serves_filled_sub_blocks_early() {
        let mut h = Harness::new(MigrationDesign::LiveMigration, 4);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 2));
        let mut ts = Vec::new();
        h.engine.take_transfers(1, &mut ts);
        assert_eq!(ts.len(), 1);
        // Critical-data-first: the first transfer is the hinted sub-block.
        assert_eq!(ts[0].sub, 2);
        // Before completion, every sub-block of page 20 is off-package.
        assert_eq!(h.loc(20), 20);
        h.engine.transfer_done(ts[0].token, &mut h.table);
        // The hinted sub-block is now served on-package, others not yet.
        let t = &h.table;
        assert_eq!(t.translate(MacroPageId(20), SubBlockId(2)).0, 7);
        assert_eq!(t.translate(MacroPageId(20), SubBlockId(0)).0, 20);
    }

    #[test]
    fn n_minus_one_is_all_or_nothing() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 2));
        let mut ts = Vec::new();
        h.engine.take_transfers(3, &mut ts);
        for t in ts.drain(..) {
            h.engine.transfer_done(t.token, &mut h.table);
        }
        // 3 of 4 sub-blocks copied: the page still routes off-package
        // ("conservatively accessing the MRU macro page with off-package
        // memory speed during the migration").
        assert_eq!(h.loc(20), 20);
        h.engine.take_transfers(8, &mut ts);
        assert_eq!(ts.len(), 1);
        h.engine.transfer_done(ts[0].token, &mut h.table);
        assert_eq!(h.loc(20), 7, "switches over only when the step completes");
    }

    #[test]
    fn n_design_halts_and_updates_table_once() {
        let mut h = Harness::new(MigrationDesign::N, 2);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 0));
        assert!(h.engine.halting());
        // Mid-swap the table is untouched.
        assert_eq!(h.loc(20), 20);
        assert_eq!(h.loc(3), 3);
        let mut guard = 0;
        while h.engine.busy() {
            let mut ts = Vec::new();
            h.engine.take_transfers(8, &mut ts);
            for t in ts {
                h.engine.transfer_done(t.token, &mut h.table);
            }
            guard += 1;
            assert!(guard < 100);
        }
        assert!(!h.engine.halting());
        assert_eq!(h.loc(20), 3, "hot page lands in the cold slot");
        assert_eq!(h.loc(3), 20, "cold page parks at the hot page's home");
        h.table.check_invariants(true, false).unwrap();
    }

    #[test]
    fn n_design_case_d_four_copies() {
        let mut h = Harness::new(MigrationDesign::N, 1);
        assert!(h.run_swap(20, 3)); // 20 <-> 3
        assert!(h.run_swap(21, 5)); // 21 <-> 5
                                    // MS page 3 in, MF page 21 (slot 5) out.
        assert!(h.run_swap(3, 5));
        assert_eq!(h.loc(3), 3);
        assert_eq!(h.loc(21), 21);
        // 20 stays on-package in slot 5... no: case (d) moves partner 20
        // into the victim slot 5.
        assert_eq!(h.loc(20), 5);
        assert_eq!(h.loc(5), 20, "victim slot's page parks at partner's home");
        h.table.check_invariants(true, false).unwrap();
    }

    #[test]
    fn busy_engine_rejects_new_swaps() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 0));
        assert!(!h.engine.start_swap(&mut h.table, 21, 4, 0));
    }

    #[test]
    fn rejects_unmigratable_candidates() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 4);
        // Hot page already on-package (OF).
        assert!(!h.engine.start_swap(&mut h.table, 2, 3, 0));
        // Cold slot is the empty slot.
        assert!(!h.engine.start_swap(&mut h.table, 20, 7, 0));
        // The reserved ghost page.
        assert!(!h.engine.start_swap(&mut h.table, 31, 3, 0));
    }

    #[test]
    fn abort_rolls_back_case_a_everywhere() {
        assert_abort_rolls_back(|| Harness::new(MigrationDesign::NMinusOne, 2), 20, 3);
    }

    #[test]
    fn abort_rolls_back_case_b_everywhere() {
        assert_abort_rolls_back(
            || {
                let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
                assert!(h.run_swap(20, 3));
                h
            },
            21,
            7,
        );
    }

    #[test]
    fn abort_rolls_back_case_c_everywhere() {
        assert_abort_rolls_back(
            || {
                let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
                assert!(h.run_swap(20, 3));
                h
            },
            7,
            2,
        );
    }

    #[test]
    fn abort_rolls_back_case_d_everywhere() {
        assert_abort_rolls_back(
            || {
                let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
                assert!(h.run_swap(20, 3));
                assert!(h.run_swap(21, 5));
                h
            },
            3,
            7,
        );
    }

    #[test]
    fn abort_rolls_back_live_migration_mid_fill() {
        assert_abort_rolls_back(|| Harness::new(MigrationDesign::LiveMigration, 4), 20, 3);
    }

    #[test]
    fn retries_are_bounded_then_abort() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 0));
        let mut ts = Vec::new();
        h.engine.take_transfers(1, &mut ts);
        let t = ts[0];
        assert_eq!(t.kind, TransferKind::Forward);
        for attempt in 1..=3u32 {
            match h.engine.transfer_failed(t.token, &mut h.table, 3) {
                FailureAction::Retry(r) => {
                    assert_eq!(r.token, t.token);
                    assert_eq!(r.sub, t.sub);
                    assert_eq!(r.attempt, attempt);
                }
                other => panic!("expected retry, got {other:?}"),
            }
        }
        // The fourth failure exhausts the budget; the swap dies during its
        // first step, so the begin-op inverses alone restore the table.
        assert!(matches!(
            h.engine.transfer_failed(t.token, &mut h.table, 3),
            FailureAction::Aborted
        ));
        assert!(!h.engine.busy());
        assert_eq!(h.engine.stats().aborted, 1);
        assert_eq!(h.engine.stats().completed, 0);
        h.table.check_invariants(true, true).unwrap();
    }

    #[test]
    fn rollback_transfers_are_marked_and_counted() {
        let mut h = Harness::new(MigrationDesign::NMinusOne, 2);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 0));
        // Complete step 0, then fail in step 1.
        let mut ts = Vec::new();
        h.engine.take_transfers(2, &mut ts);
        for t in ts.drain(..) {
            h.engine.transfer_done(t.token, &mut h.table);
        }
        h.engine.take_transfers(1, &mut ts);
        assert!(matches!(
            h.engine.transfer_failed(ts[0].token, &mut h.table, 0),
            FailureAction::RollbackStarted
        ));
        let mut rb = Vec::new();
        h.engine.take_transfers(8, &mut rb);
        assert!(!rb.is_empty());
        assert!(rb.iter().all(|t| t.kind == TransferKind::Rollback));
        let mut last = SwapProgress::InFlight;
        for t in rb {
            last = h.engine.transfer_done(t.token, &mut h.table);
        }
        if h.engine.busy() {
            last = h.pump();
        }
        assert_eq!(last, SwapProgress::RollbackDone);
        assert_eq!(h.engine.stats().rolled_back_sub_blocks, 2);
        h.table.check_invariants(true, true).unwrap();
    }

    #[test]
    fn n_design_abort_leaves_table_untouched() {
        let mut h = Harness::new(MigrationDesign::N, 2);
        let snap = snapshot(&h.table);
        assert!(h.engine.start_swap(&mut h.table, 20, 3, 0));
        let mut ts = Vec::new();
        h.engine.take_transfers(1, &mut ts);
        assert!(matches!(
            h.engine.transfer_failed(ts[0].token, &mut h.table, 0),
            FailureAction::Aborted
        ));
        assert!(!h.engine.busy());
        assert_eq!(snapshot(&h.table), snap);
        h.table.check_invariants(true, false).unwrap();
    }

    /// 8 slots, 34 total pages: ghost = 33, spares at 31 and 32,
    /// program-visible pages 0..31.
    fn spared(design: MigrationDesign) -> Harness {
        Harness {
            table: TranslationTable::with_spares(8, 34, true, 2),
            engine: MigrationEngine::new(design, 2),
        }
    }

    #[test]
    fn quarantine_own_slot_parks_page_at_spare() {
        let mut h = spared(MigrationDesign::NMinusOne);
        assert!(h.engine.start_quarantine(&mut h.table, 2));
        let last = h.pump();
        assert_eq!(last, SwapProgress::DrainDone { slot: 2, parked: 31 });
        assert!(h.table.is_quarantined(2));
        assert_eq!(h.loc(2), 31, "own page lives at the spare");
        assert_eq!(h.table.empty_slot(), Some(7), "the empty slot is untouched");
        assert_eq!(h.engine.stats().quarantine_drains, 1);
        h.table.check_invariants(true, true).unwrap();
        // Retired slots cannot be quarantined again.
        assert!(!h.engine.start_quarantine(&mut h.table, 2));
    }

    #[test]
    fn quarantine_swapped_slot_drains_guest_home() {
        let mut h = spared(MigrationDesign::NMinusOne);
        assert!(h.run_swap(20, 3)); // slot 7 now holds guest page 20
        assert_eq!(h.loc(20), 7);
        assert!(h.engine.start_quarantine(&mut h.table, 7));
        let last = h.pump();
        assert_eq!(last, SwapProgress::DrainDone { slot: 7, parked: 31 });
        assert!(h.table.is_quarantined(7));
        assert_eq!(h.loc(20), 20, "guest drained back to its own home");
        assert_eq!(h.loc(7), 31, "slot 7's own page parks at the spare");
        assert_eq!(h.table.empty_slot(), Some(3));
        h.table.check_invariants(true, true).unwrap();
    }

    #[test]
    fn quarantine_empty_slot_transplants_emptiness() {
        let mut h = spared(MigrationDesign::NMinusOne);
        assert_eq!(h.table.empty_slot(), Some(7));
        assert!(h.engine.start_quarantine(&mut h.table, 7));
        let last = h.pump();
        assert_eq!(last, SwapProgress::DrainDone { slot: 7, parked: 31 });
        assert!(h.table.is_quarantined(7));
        assert_eq!(h.loc(7), 31, "parked ghost data moved to the spare");
        let new_empty = h.table.empty_slot().expect("emptiness transplanted to a victim");
        assert_ne!(new_empty, 7);
        assert_eq!(h.loc(new_empty as u64), 33, "victim's page is the new ghost");
        h.table.check_invariants(true, true).unwrap();
    }

    #[test]
    fn quarantine_refused_when_out_of_spares_or_busy() {
        let mut h = spared(MigrationDesign::NMinusOne);
        assert!(h.engine.start_quarantine(&mut h.table, 1));
        assert!(!h.engine.start_quarantine(&mut h.table, 2), "engine is busy draining");
        h.pump();
        assert!(h.engine.start_quarantine(&mut h.table, 2));
        h.pump();
        // Both spares are used up now.
        assert!(!h.table.spare_available());
        assert!(!h.engine.start_quarantine(&mut h.table, 3));
        // The N design has no quarantine machinery at all.
        let mut n = Harness::new(MigrationDesign::N, 2);
        assert!(!n.engine.start_quarantine(&mut n.table, 1));
    }

    #[test]
    fn quarantined_slots_keep_migrating_correctly() {
        let mut h = spared(MigrationDesign::NMinusOne);
        assert!(h.engine.start_quarantine(&mut h.table, 2));
        h.pump();
        // Swaps still work around the retired slot.
        assert!(h.run_swap(20, 3));
        assert_eq!(h.loc(20), 7);
        assert!(h.run_swap(21, 4));
        h.table.check_invariants(true, true).unwrap();
        assert_eq!(h.loc(2), 31, "quarantined slot's page stays parked");
    }

    #[test]
    fn swap_stats_merge_covers_fault_counters() {
        let mut a = SwapStats {
            triggered: 1,
            completed: 1,
            case_counts: [1, 0, 0, 0],
            sub_blocks_copied: 4,
            aborted: 1,
            rolled_back_sub_blocks: 2,
            quarantine_drains: 1,
        };
        let b = SwapStats {
            triggered: 2,
            completed: 1,
            case_counts: [0, 1, 1, 0],
            sub_blocks_copied: 6,
            aborted: 2,
            rolled_back_sub_blocks: 3,
            quarantine_drains: 2,
        };
        a.merge(&b);
        assert_eq!(a.triggered, 3);
        assert_eq!(a.aborted, 3);
        assert_eq!(a.rolled_back_sub_blocks, 5);
        assert_eq!(a.quarantine_drains, 3);
        assert_eq!(a.sub_blocks_copied, 10);
        assert_eq!(a.case_counts, [1, 1, 1, 0]);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Harness::new(MigrationDesign::LiveMigration, 8);
        h.run_swap(20, 3);
        h.run_swap(21, 4);
        let s = h.engine.stats();
        assert_eq!(s.triggered, 2);
        assert_eq!(s.completed, 2);
        assert_eq!(s.sub_blocks_copied, 2 * 3 * 8);
    }
}
