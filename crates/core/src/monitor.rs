//! Hotness monitors (Section III-B).
//!
//! * The **coldest on-package macro page** is found with a clock-based
//!   pseudo-LRU over the N slots ("the second bit map is used to record the
//!   LRU macro page with clock-based pseudo-LRU algorithm, which is used in
//!   real microprocessor implementation"), one reference bit per slot.
//! * The **hottest off-package macro page** is approximated with a
//!   multi-queue: "three-level of queue with ten entries per level". Pages
//!   enter level 0 on first touch and are promoted as their access count
//!   crosses level thresholds; each level evicts its least-recently-touched
//!   entry when full. The hottest candidate is the most-recently-promoted
//!   entry of the highest occupied level.
//!
//! Both monitors also keep per-epoch access counters, because the swap
//! trigger is comparative: "triggers the memory migration if the
//! off-package MRU page is accessed more frequently than the on-package
//! LRU page after each monitoring epoch".

/// Clock (second-chance) pseudo-LRU over the on-package slots.
#[derive(Debug, Clone)]
pub struct SlotClock {
    ref_bits: Vec<bool>,
    epoch_counts: Vec<u32>,
    hand: usize,
}

impl SlotClock {
    /// A clock over `n` slots.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { ref_bits: vec![false; n], epoch_counts: vec![0; n], hand: 0 }
    }

    /// Record an access to a slot.
    #[inline]
    pub fn touch(&mut self, slot: u32) {
        self.ref_bits[slot as usize] = true;
        self.epoch_counts[slot as usize] += 1;
    }

    /// Accesses to this slot in the current epoch.
    pub fn epoch_count(&self, slot: u32) -> u32 {
        self.epoch_counts[slot as usize]
    }

    /// Find the coldest slot, skipping any slot for which `skip` returns
    /// true (the empty slot, or a slot involved in an active migration).
    /// Advances the hand and clears reference bits like real hardware.
    /// Returns `None` if every slot is skipped.
    pub fn coldest<F: Fn(u32) -> bool>(&mut self, skip: F) -> Option<u32> {
        let n = self.ref_bits.len();
        // At most two sweeps: one clearing ref bits, one guaranteed find.
        for _ in 0..2 * n {
            let s = self.hand;
            self.hand = (self.hand + 1) % n;
            if skip(s as u32) {
                continue;
            }
            if self.ref_bits[s] {
                self.ref_bits[s] = false;
            } else {
                return Some(s as u32);
            }
        }
        None
    }

    /// Start a new monitoring epoch (clears the comparative counters,
    /// keeps the clock bits).
    pub fn new_epoch(&mut self) {
        self.epoch_counts.fill(0);
    }

    /// Serialize the clock state (snapshot/resume support).
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        w.usize(self.ref_bits.len());
        for &b in &self.ref_bits {
            w.bool(b);
        }
        for &c in &self.epoch_counts {
            w.u32(c);
        }
        w.usize(self.hand);
    }

    /// Restore clock state saved by [`SlotClock::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        let n = r.usize()?;
        if n != self.ref_bits.len() {
            return Err(format!("slot count mismatch: expected {}", self.ref_bits.len()));
        }
        for b in &mut self.ref_bits {
            *b = r.bool()?;
        }
        for c in &mut self.epoch_counts {
            *c = r.u32()?;
        }
        self.hand = r.usize()?;
        if self.hand >= n {
            return Err(format!("clock hand {} out of range", self.hand));
        }
        Ok(())
    }
}

/// One multi-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MqEntry {
    page: u64,
    /// Accesses since the entry was created (drives promotion).
    count: u32,
    /// Accesses in the current epoch (drives the swap trigger).
    epoch_count: u32,
    /// Sub-block of the most recent access (critical-data-first hint).
    last_sub: u32,
}

/// Multi-queue MRU filter over off-package macro pages.
#[derive(Debug, Clone)]
pub struct MultiQueueMru {
    /// `levels[k]` is ordered least- to most-recently-touched.
    levels: Vec<Vec<MqEntry>>,
    entries_per_level: usize,
}

/// Promotion thresholds: an entry moves from level k to k+1 once its count
/// reaches `2^(k+2)` accesses (4, 8 for a three-level queue).
fn promote_threshold(level: usize) -> u32 {
    1 << (level + 2)
}

impl MultiQueueMru {
    /// The paper's configuration: 3 levels x 10 entries.
    pub fn paper_default() -> Self {
        Self::new(3, 10)
    }

    /// A multi-queue with `levels` levels of `entries_per_level` entries.
    pub fn new(levels: usize, entries_per_level: usize) -> Self {
        assert!(levels > 0 && entries_per_level > 0);
        Self { levels: vec![Vec::new(); levels], entries_per_level }
    }

    /// Record an access to an off-package page; `sub` is the sub-block
    /// touched (kept as the critical-data-first start hint).
    pub fn touch(&mut self, page: u64, sub: u32) {
        // Find the entry in any level.
        for k in 0..self.levels.len() {
            if let Some(i) = self.levels[k].iter().position(|e| e.page == page) {
                let mut e = self.levels[k].remove(i);
                e.count += 1;
                e.epoch_count += 1;
                e.last_sub = sub;
                let target = if k + 1 < self.levels.len() && e.count >= promote_threshold(k) {
                    k + 1
                } else {
                    k
                };
                self.insert(target, e);
                return;
            }
        }
        // New page: enter level 0.
        self.insert(0, MqEntry { page, count: 1, epoch_count: 1, last_sub: sub });
    }

    fn insert(&mut self, level: usize, e: MqEntry) {
        let q = &mut self.levels[level];
        if q.len() == self.entries_per_level {
            // Evict the least-recently-touched entry; demote it one level
            // rather than dropping, if there is room below.
            let victim = q.remove(0);
            if level > 0 && self.levels[level - 1].len() < self.entries_per_level {
                self.levels[level - 1].push(victim);
            }
        }
        self.levels[level].push(e);
    }

    /// The hottest candidate: the most-recently-touched entry of the
    /// highest occupied level, with its epoch access count and last-touched
    /// sub-block. `skip` filters pages that cannot be migrated right now.
    pub fn hottest<F: Fn(u64) -> bool>(&self, skip: F) -> Option<(u64, u32, u32)> {
        self.hottest_with_level(skip).map(|(p, c, s, _)| (p, c, s))
    }

    /// Like [`MultiQueueMru::hottest`], additionally reporting which queue
    /// level the candidate currently sits in. Promotion level is the
    /// multi-queue's long-term hotness signal (the epoch count is only the
    /// current epoch's), which is what the MLQ promotion-based migration
    /// trigger keys on.
    pub fn hottest_with_level<F: Fn(u64) -> bool>(&self, skip: F) -> Option<(u64, u32, u32, u32)> {
        for (k, q) in self.levels.iter().enumerate().rev() {
            for e in q.iter().rev() {
                if !skip(e.page) {
                    return Some((e.page, e.epoch_count, e.last_sub, k as u32));
                }
            }
        }
        None
    }

    /// Remove a page (it has been migrated on-package).
    pub fn remove(&mut self, page: u64) {
        for q in &mut self.levels {
            if let Some(i) = q.iter().position(|e| e.page == page) {
                q.remove(i);
                return;
            }
        }
    }

    /// Start a new monitoring epoch.
    pub fn new_epoch(&mut self) {
        for q in &mut self.levels {
            for e in q {
                e.epoch_count = 0;
            }
        }
    }

    /// Serialize the queue state in level-then-recency order
    /// (snapshot/resume support). Ordering is behaviour-relevant — both
    /// promotion and the hottest-candidate scan depend on it — so entries
    /// are written and restored in exactly their stored order.
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        w.usize(self.levels.len());
        for q in &self.levels {
            w.usize(q.len());
            for e in q {
                w.u64(e.page);
                w.u32(e.count);
                w.u32(e.epoch_count);
                w.u32(e.last_sub);
            }
        }
    }

    /// Restore queue state saved by [`MultiQueueMru::save_state`].
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        let n = r.usize()?;
        if n != self.levels.len() {
            return Err(format!("level count mismatch: expected {}", self.levels.len()));
        }
        for q in &mut self.levels {
            let len = r.seq_len(20)?;
            if len > self.entries_per_level {
                return Err(format!("level holds {len} > {} entries", self.entries_per_level));
            }
            q.clear();
            for _ in 0..len {
                q.push(MqEntry {
                    page: r.u64()?,
                    count: r.u32()?,
                    epoch_count: r.u32()?,
                    last_sub: r.u32()?,
                });
            }
        }
        Ok(())
    }

    /// Total tracked pages (for tests).
    pub fn len(&self) -> usize {
        self.levels.iter().map(|q| q.len()).sum()
    }

    /// True when no page is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_finds_untouched_slot() {
        let mut c = SlotClock::new(4);
        c.touch(0);
        c.touch(1);
        c.touch(3);
        // Slot 2 was never touched: it must be found (possibly after one
        // clearing sweep).
        assert_eq!(c.coldest(|_| false), Some(2));
    }

    #[test]
    fn clock_respects_skip() {
        let mut c = SlotClock::new(4);
        c.touch(0);
        c.touch(1);
        c.touch(3);
        assert_eq!(c.coldest(|s| s == 2), Some(0), "skipping 2 falls back to a swept slot");
    }

    #[test]
    fn clock_all_skipped_returns_none() {
        let mut c = SlotClock::new(4);
        assert_eq!(c.coldest(|_| true), None);
    }

    #[test]
    fn clock_epoch_counts_reset() {
        let mut c = SlotClock::new(2);
        c.touch(0);
        c.touch(0);
        assert_eq!(c.epoch_count(0), 2);
        c.new_epoch();
        assert_eq!(c.epoch_count(0), 0);
    }

    #[test]
    fn clock_eventually_cycles_under_uniform_touch() {
        let mut c = SlotClock::new(3);
        for s in 0..3 {
            c.touch(s);
        }
        // All referenced: first sweep clears, then slot under hand wins.
        let first = c.coldest(|_| false).unwrap();
        assert!(first < 3);
    }

    #[test]
    fn mq_new_pages_enter_level_zero() {
        let mut m = MultiQueueMru::paper_default();
        m.touch(100, 3);
        assert_eq!(m.len(), 1);
        assert_eq!(m.hottest(|_| false), Some((100, 1, 3)));
    }

    #[test]
    fn mq_promotion_beats_recency_of_lower_levels() {
        let mut m = MultiQueueMru::paper_default();
        // Page 100 accessed enough to promote to level 1.
        for _ in 0..promote_threshold(0) {
            m.touch(100, 0);
        }
        // A fresher but colder page.
        m.touch(200, 0);
        let (hot, _, _) = m.hottest(|_| false).unwrap();
        assert_eq!(hot, 100, "promoted page outranks recent level-0 page");
    }

    #[test]
    fn mq_skip_filters_candidates() {
        let mut m = MultiQueueMru::paper_default();
        for _ in 0..8 {
            m.touch(100, 0);
        }
        m.touch(200, 0);
        assert_eq!(m.hottest(|p| p == 100).unwrap().0, 200);
        assert_eq!(m.hottest(|_| true), None);
    }

    #[test]
    fn mq_capacity_evicts_least_recent() {
        let mut m = MultiQueueMru::new(1, 3);
        for p in 0..4 {
            m.touch(p, 0);
        }
        assert_eq!(m.len(), 3);
        // Page 0 (least recent) was evicted; touching it re-inserts fresh.
        m.touch(0, 7);
        let (hot, cnt, sub) = m.hottest(|_| false).unwrap();
        assert_eq!((hot, cnt, sub), (0, 1, 7), "re-inserted entry restarts counting");
    }

    #[test]
    fn mq_remove_and_epoch_reset() {
        let mut m = MultiQueueMru::paper_default();
        m.touch(100, 1);
        m.touch(100, 2);
        assert_eq!(m.hottest(|_| false), Some((100, 2, 2)));
        m.new_epoch();
        m.touch(100, 5);
        assert_eq!(m.hottest(|_| false), Some((100, 1, 5)));
        m.remove(100);
        assert!(m.is_empty());
    }

    #[test]
    fn mq_demotion_preserves_hot_history() {
        let mut m = MultiQueueMru::new(2, 2);
        // Promote two pages to level 1 (threshold at level 0 = 4).
        for p in [1u64, 2] {
            for _ in 0..4 {
                m.touch(p, 0);
            }
        }
        // Promote a third: level 1 is full, its LRU (page 1) demotes to
        // level 0 instead of vanishing.
        for _ in 0..4 {
            m.touch(3, 0);
        }
        assert_eq!(m.len(), 3);
        let (hot, _, _) = m.hottest(|_| false).unwrap();
        assert!(hot == 3 || hot == 2);
    }

    #[test]
    fn mq_zipf_stream_surfaces_the_hot_page() {
        use hmm_sim_base::rng::{SimRng, Zipf};
        let mut m = MultiQueueMru::paper_default();
        let z = Zipf::new(1000, 1.1);
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            m.touch(z.sample(&mut rng) as u64 + 1000, 0);
        }
        let (hot, _, _) = m.hottest(|_| false).unwrap();
        // The low zipf ranks are by far the hottest; the MQ (a heuristic
        // filter, not an exact counter) should surface one of them.
        assert!(hot - 1000 < 10, "expected a top-10 zipf rank, got {}", hot - 1000);
    }
}
