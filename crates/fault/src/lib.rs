//! Deterministic fault injection for the heterogeneous memory simulator.
//!
//! The paper's N-1 migration design is sold on an availability argument:
//! every macro page always has exactly one valid physical home, so the
//! machine never halts mid-swap.  This crate supplies the adversary that
//! tests the claim — a seeded [`FaultPlan`] describing *which* faults to
//! inject and *how often*, evaluated with a stateless hash so that the
//! same plan over the same simulation produces the same faults no matter
//! how the simulator interleaves its queries.
//!
//! Fault classes (all optional, all off by default):
//!
//! * **ECC events** — per-read single-bit flips (corrected by the SECDED
//!   code, latency-free) and double-bit flips (detected-uncorrectable).
//! * **Stuck-at banks** — a (region, channel, bank) triple whose reads
//!   are always uncorrectable, modelling a dead DRAM bank.
//! * **Throttle windows** — periodic refresh/thermal stall windows during
//!   which a region issues no transactions.
//! * **Transfer faults** — migration sub-block copies that are dropped or
//!   time out in flight, forcing the controller to retry and eventually
//!   abort the swap.
//! * **Translation-row corruption** — a soft error in the on-chip
//!   translation RAM, detected by its parity protection and repaired
//!   from the controller's shadow copy at a latency cost.
//!
//! The plan also carries the *recovery policy* knobs (retry budget,
//! backoff, quarantine threshold, spare capacity) so one `--faults=`
//! string describes a whole experiment.

#![warn(missing_docs)]

/// Maximum number of stuck-at bank faults a single plan can carry.
pub const MAX_STUCK_BANKS: usize = 4;

/// Which memory region a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRegion {
    /// On-package (die-stacked) DRAM only.
    On,
    /// Off-package (DIMM) DRAM only.
    Off,
    /// Both regions.
    Both,
}

impl FaultRegion {
    /// Does this fault apply to the given region (`true` = on-package)?
    pub fn applies(self, on_package: bool) -> bool {
        match self {
            FaultRegion::On => on_package,
            FaultRegion::Off => !on_package,
            FaultRegion::Both => true,
        }
    }
}

/// A permanently failed DRAM bank: every read it services returns
/// uncorrectable data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckBank {
    /// Region the bank lives in (`Both` matches either region).
    pub region: FaultRegion,
    /// Channel index within the region.
    pub channel: u32,
    /// Bank index within the channel (rank-major, as the timing model
    /// numbers them).
    pub bank: u32,
}

/// A periodic stall window modelling refresh storms or thermal
/// throttling: for `duration` cycles out of every `period`, the matching
/// region issues no transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleSpec {
    /// Region the window applies to.
    pub region: FaultRegion,
    /// Window repeat period in memory-controller cycles.
    pub period: u64,
    /// Stall length at the start of each period, in cycles.
    pub duration: u64,
}

/// Outcome of the SECDED(72,64) ECC check on a serviced read.
///
/// Single-bit errors are corrected in-line (the model charges no extra
/// latency); double-bit errors and stuck-bank reads are detected but
/// uncorrectable, and it is the consumer's job to recover (retry a
/// migration transfer, count demand errors toward quarantine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// A single-bit error the SECDED code corrected transparently.
    Corrected,
    /// A detected-but-uncorrectable error.
    Uncorrectable(UncorrectableCause),
}

/// Why an uncorrectable ECC outcome was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UncorrectableCause {
    /// Two independent bit flips in one code word: SECDED detects but
    /// cannot correct.
    DoubleBit,
    /// The read hit a stuck-at bank from the plan.
    StuckBank,
}

/// How an in-flight migration transfer failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The transfer was silently dropped (e.g. a NACKed interconnect
    /// packet) and must be re-issued.
    Dropped,
    /// The transfer exceeded its completion deadline.
    TimedOut,
}

/// A complete, seeded description of the faults to inject during one run
/// plus the recovery-policy knobs the controller should use.
///
/// The plan is `Copy` and free of interior state: every query hashes the
/// seed with the caller-supplied coordinates, so fault decisions are a
/// pure function of (plan, site) and the simulation stays deterministic
/// regardless of query order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the stateless fault hash.
    pub seed: u64,
    /// Per-read probability of a correctable single-bit flip.
    pub flip_rate: f64,
    /// Per-read probability of an uncorrectable double-bit flip.
    pub uflip_rate: f64,
    /// Per-transfer probability that a migration sub-block copy is
    /// dropped in flight.
    pub drop_rate: f64,
    /// Per-transfer probability that a migration sub-block copy times
    /// out.
    pub timeout_rate: f64,
    /// Per-swap probability that a translation row takes a soft error at
    /// swap-trigger time (detected and repaired at a latency cost).
    pub row_corrupt_rate: f64,
    /// Permanently failed banks (up to [`MAX_STUCK_BANKS`]).
    pub stuck_banks: [Option<StuckBank>; MAX_STUCK_BANKS],
    /// Optional periodic throttle window.
    pub throttle: Option<ThrottleSpec>,
    /// How many times a failed transfer is retried before the swap is
    /// aborted and rolled back.
    pub max_retries: u32,
    /// Base backoff before a retry is re-issued; retry `n` waits
    /// `retry_backoff_cycles << (n-1)` cycles.
    pub retry_backoff_cycles: u64,
    /// Number of uncorrectable errors attributed to one on-package slot
    /// before it is quarantined (0 disables quarantine).
    pub quarantine_threshold: u32,
    /// Spare off-package pages reserved for parking the occupants of
    /// quarantined slots; bounds how many slots can be retired.
    pub spare_slots: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            flip_rate: 0.0,
            uflip_rate: 0.0,
            drop_rate: 0.0,
            timeout_rate: 0.0,
            row_corrupt_rate: 0.0,
            stuck_banks: [None; MAX_STUCK_BANKS],
            throttle: None,
            max_retries: 3,
            retry_backoff_cycles: 2_000,
            quarantine_threshold: 8,
            spare_slots: 1,
        }
    }
}

/// splitmix64 finaliser: a cheap, well-mixed 64-bit permutation.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent hash domains so an ECC roll at site (a, b) can never
/// correlate with a transfer roll at the same coordinates.
#[derive(Clone, Copy)]
enum Domain {
    Ecc = 1,
    Transfer = 2,
    RowCorrupt = 3,
}

impl FaultPlan {
    /// True if the plan can ever inject anything (used to skip fault
    /// bookkeeping entirely on fault-free runs).
    pub fn any_faults(&self) -> bool {
        self.flip_rate > 0.0
            || self.uflip_rate > 0.0
            || self.drop_rate > 0.0
            || self.timeout_rate > 0.0
            || self.row_corrupt_rate > 0.0
            || self.stuck_banks.iter().any(Option::is_some)
            || self.throttle.is_some()
    }

    /// Deterministic uniform draw in `[0, 1)` for a fault site.
    #[inline]
    fn roll(&self, domain: Domain, a: u64, b: u64) -> f64 {
        let z = mix(mix(mix(self.seed ^ (domain as u64).wrapping_mul(0xA5A5_A5A5)) ^ a) ^ b);
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// SECDED outcome for a serviced read, excluding stuck banks (see
    /// [`FaultPlan::is_stuck`]).  `addr` and `id` identify the access so
    /// repeated reads of the same line at different times fault
    /// independently.
    #[inline]
    pub fn classify_read(&self, addr: u64, id: u64) -> Option<MemFault> {
        if self.flip_rate <= 0.0 && self.uflip_rate <= 0.0 {
            return None;
        }
        let r = self.roll(Domain::Ecc, addr, id);
        if r < self.uflip_rate {
            Some(MemFault::Uncorrectable(UncorrectableCause::DoubleBit))
        } else if r < self.uflip_rate + self.flip_rate {
            Some(MemFault::Corrected)
        } else {
            None
        }
    }

    /// Does the plan declare (region, channel, bank) stuck?
    #[inline]
    pub fn is_stuck(&self, on_package: bool, channel: u32, bank: u32) -> bool {
        self.stuck_banks
            .iter()
            .flatten()
            .any(|s| s.region.applies(on_package) && s.channel == channel && s.bank == bank)
    }

    /// Fate of the `seq`-th migration transfer issued this run (the
    /// caller numbers transfers monotonically).
    #[inline]
    pub fn transfer_fault(&self, seq: u64) -> Option<TransferFault> {
        if self.drop_rate <= 0.0 && self.timeout_rate <= 0.0 {
            return None;
        }
        let r = self.roll(Domain::Transfer, seq, 0);
        if r < self.drop_rate {
            Some(TransferFault::Dropped)
        } else if r < self.drop_rate + self.timeout_rate {
            Some(TransferFault::TimedOut)
        } else {
            None
        }
    }

    /// Does the `seq`-th swap trigger corrupt a translation row?
    #[inline]
    pub fn row_corrupts(&self, seq: u64) -> bool {
        self.row_corrupt_rate > 0.0 && self.roll(Domain::RowCorrupt, seq, 0) < self.row_corrupt_rate
    }

    /// If `at` falls inside a throttle window for the given region,
    /// returns the cycle at which the window ends (the earliest issue
    /// time); otherwise `None`.
    #[inline]
    pub fn throttle_release(&self, on_package: bool, at: u64) -> Option<u64> {
        let t = self.throttle?;
        if !t.region.applies(on_package) || t.period == 0 {
            return None;
        }
        let into = at % t.period;
        (into < t.duration).then(|| at - into + t.duration)
    }

    /// Parse a fault specification string.
    ///
    /// The spec is a comma-separated list of tokens.  The token `stress`
    /// loads the documented stress preset; `key=value` tokens set
    /// individual fields (later tokens override earlier ones, so
    /// `stress,drop=0` is the stress schedule without transfer drops):
    ///
    /// * `flip`, `uflip`, `drop`, `timeout`, `rowcorrupt` — rates in
    ///   `[0, 1]`
    /// * `stuck=REGION:CHANNEL:BANK` — add a stuck bank (repeatable,
    ///   REGION is `on`/`off`/`both`)
    /// * `throttle=REGION:PERIOD:DURATION` — periodic stall window
    /// * `retries`, `backoff`, `qthresh`, `spares`, `seed` — integers
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if token == "stress" {
                plan = FaultPlan::stress(plan.seed);
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault token `{token}` is not `key=value` or `stress`"))?;
            match key {
                "flip" => plan.flip_rate = parse_rate(key, value)?,
                "uflip" => plan.uflip_rate = parse_rate(key, value)?,
                "drop" => plan.drop_rate = parse_rate(key, value)?,
                "timeout" => plan.timeout_rate = parse_rate(key, value)?,
                "rowcorrupt" => plan.row_corrupt_rate = parse_rate(key, value)?,
                "retries" => plan.max_retries = parse_int(key, value)? as u32,
                "backoff" => plan.retry_backoff_cycles = parse_int(key, value)?,
                "qthresh" => plan.quarantine_threshold = parse_int(key, value)? as u32,
                "spares" => plan.spare_slots = parse_int(key, value)? as u32,
                "seed" => plan.seed = parse_int(key, value)?,
                "stuck" => {
                    let (region, channel, bank) = parse_triple(key, value)?;
                    let slot = plan
                        .stuck_banks
                        .iter_mut()
                        .find(|s| s.is_none())
                        .ok_or_else(|| format!("more than {MAX_STUCK_BANKS} stuck banks"))?;
                    *slot = Some(StuckBank { region, channel: channel as u32, bank: bank as u32 });
                }
                "throttle" => {
                    let (region, period, duration) = parse_triple(key, value)?;
                    if period == 0 || duration == 0 || duration >= period {
                        return Err(format!(
                            "throttle needs 0 < duration < period, got {duration}/{period}"
                        ));
                    }
                    plan.throttle = Some(ThrottleSpec { region, period, duration });
                }
                _ => return Err(format!("unknown fault key `{key}`")),
            }
        }
        Ok(plan)
    }

    /// The documented stress schedule: every fault class active at rates
    /// that exercise retry, rollback and quarantine within a short run.
    pub fn stress(seed: u64) -> FaultPlan {
        let mut stuck = [None; MAX_STUCK_BANKS];
        stuck[0] = Some(StuckBank { region: FaultRegion::On, channel: 0, bank: 5 });
        FaultPlan {
            seed,
            flip_rate: 2e-4,
            uflip_rate: 5e-5,
            drop_rate: 2e-3,
            timeout_rate: 1e-3,
            row_corrupt_rate: 5e-4,
            stuck_banks: stuck,
            throttle: Some(ThrottleSpec {
                region: FaultRegion::Off,
                period: 300_000,
                duration: 3_000,
            }),
            max_retries: 3,
            retry_backoff_cycles: 2_000,
            quarantine_threshold: 4,
            spare_slots: 2,
        }
    }
}

fn parse_rate(key: &str, value: &str) -> Result<f64, String> {
    let r: f64 =
        value.parse().map_err(|_| format!("fault key `{key}`: `{value}` is not a number"))?;
    if !(0.0..=1.0).contains(&r) {
        return Err(format!("fault key `{key}`: rate {r} outside [0, 1]"));
    }
    Ok(r)
}

fn parse_int(key: &str, value: &str) -> Result<u64, String> {
    value.parse().map_err(|_| format!("fault key `{key}`: `{value}` is not an integer"))
}

fn parse_triple(key: &str, value: &str) -> Result<(FaultRegion, u64, u64), String> {
    let mut it = value.split(':');
    let region = match it.next() {
        Some("on") => FaultRegion::On,
        Some("off") => FaultRegion::Off,
        Some("both") => FaultRegion::Both,
        other => {
            return Err(format!(
                "fault key `{key}`: region `{}` is not on/off/both",
                other.unwrap_or("")
            ))
        }
    };
    let mut num = || -> Result<u64, String> {
        it.next()
            .ok_or_else(|| format!("fault key `{key}` needs REGION:A:B"))?
            .parse()
            .map_err(|_| format!("fault key `{key}`: non-integer field in `{value}`"))
    };
    let a = num()?;
    let b = num()?;
    if it.next().is_some() {
        return Err(format!("fault key `{key}`: too many fields in `{value}`"));
    }
    Ok((region, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert!(!p.any_faults());
        for i in 0..1_000u64 {
            assert_eq!(p.classify_read(i * 64, i), None);
            assert_eq!(p.transfer_fault(i), None);
            assert!(!p.row_corrupts(i));
            assert_eq!(p.throttle_release(i % 2 == 0, i * 100), None);
        }
        assert!(!p.is_stuck(true, 0, 0));
    }

    #[test]
    fn rolls_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan { flip_rate: 0.1, uflip_rate: 0.05, ..FaultPlan::default() };
        let b = FaultPlan { seed: a.seed + 1, ..a };
        let hits = |p: &FaultPlan| {
            (0..10_000u64).filter(|&i| p.classify_read(i * 64, 7).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(hits(&a), hits(&a), "same plan, same faults");
        assert_ne!(hits(&a), hits(&b), "different seed, different faults");
        // Rates land in the right ballpark (15% combined, wide tolerance).
        let n = hits(&a).len();
        assert!((1_000..2_200).contains(&n), "combined rate off: {n}/10000");
    }

    #[test]
    fn ecc_severity_ordering() {
        let p = FaultPlan { flip_rate: 0.2, uflip_rate: 0.1, ..FaultPlan::default() };
        let (mut corrected, mut fatal) = (0, 0);
        for i in 0..10_000u64 {
            match p.classify_read(i * 64, 0) {
                Some(MemFault::Corrected) => corrected += 1,
                Some(MemFault::Uncorrectable(c)) => {
                    assert_eq!(c, UncorrectableCause::DoubleBit);
                    fatal += 1;
                }
                None => {}
            }
        }
        assert!(corrected > fatal, "single-bit flips outnumber double-bit: {corrected} {fatal}");
    }

    #[test]
    fn throttle_windows_gate_the_right_region() {
        let p = FaultPlan {
            throttle: Some(ThrottleSpec { region: FaultRegion::Off, period: 1_000, duration: 100 }),
            ..FaultPlan::default()
        };
        assert_eq!(p.throttle_release(false, 0), Some(100));
        assert_eq!(p.throttle_release(false, 99), Some(100));
        assert_eq!(p.throttle_release(false, 100), None);
        assert_eq!(p.throttle_release(false, 2_050), Some(2_100));
        assert_eq!(p.throttle_release(true, 0), None, "on-package unaffected");
    }

    #[test]
    fn stuck_banks_match_region_channel_bank() {
        let p = FaultPlan::parse("stuck=on:1:3,stuck=both:0:0").unwrap();
        assert!(p.is_stuck(true, 1, 3));
        assert!(!p.is_stuck(false, 1, 3));
        assert!(p.is_stuck(true, 0, 0) && p.is_stuck(false, 0, 0));
        assert!(!p.is_stuck(true, 1, 2));
    }

    #[test]
    fn parse_stress_preset_and_overrides() {
        let p = FaultPlan::parse("stress").unwrap();
        assert_eq!(p, FaultPlan::stress(FaultPlan::default().seed));
        assert!(p.any_faults());
        let q = FaultPlan::parse("stress,drop=0,timeout=0,seed=9").unwrap();
        assert_eq!(q.drop_rate, 0.0);
        assert_eq!(q.timeout_rate, 0.0);
        assert_eq!(q.seed, 9);
        assert_eq!(q.flip_rate, p.flip_rate, "overrides keep the rest of the preset");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "flip",
            "flip=x",
            "flip=1.5",
            "nope=1",
            "stuck=mid:0:0",
            "stuck=on:0",
            "stuck=on:0:0:0",
            "throttle=off:0:0",
            "throttle=off:100:100",
            "retries=many",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should fail");
        }
        // Five stuck banks overflow the fixed array.
        let five = std::iter::repeat_n("stuck=on:0:1", 5).collect::<Vec<_>>().join(",");
        assert!(FaultPlan::parse(&five).is_err());
    }

    #[test]
    fn parse_empty_spec_is_default() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }
}
