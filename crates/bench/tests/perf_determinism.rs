//! The perf suite's sim-stat digests must be bit-identical however the
//! suite is executed: sequentially, fanned out over `par_map` workers, or
//! in two back-to-back invocations. Wall-clock numbers may wobble; the
//! *simulated* counters may not — the CI perf gate and every cross-binary
//! A/B comparison depend on it.

use hmm_bench::perf::{scenario_digest, suite};
use hmm_sim_base::par_map;

#[test]
fn digests_identical_sequential_vs_parallel_and_across_invocations() {
    let scenarios = suite();
    let sequential: Vec<u64> = scenarios.iter().map(|s| scenario_digest(s, true)).collect();
    let parallel: Vec<u64> = par_map(scenarios.clone(), |s| scenario_digest(&s, true));
    assert_eq!(
        sequential, parallel,
        "perf-suite digests must not depend on the execution strategy"
    );
    let again: Vec<u64> = par_map(scenarios, |s| scenario_digest(&s, true));
    assert_eq!(parallel, again, "back-to-back invocations must agree bit-for-bit");
}

#[test]
fn suite_digests_are_distinct_per_scenario() {
    // Nine scenarios, nine distinct behaviours: a digest collision here
    // would mean the hash ignores the counters that distinguish designs.
    let mut ds: Vec<u64> = par_map(suite(), |s| scenario_digest(&s, true));
    ds.sort_unstable();
    ds.dedup();
    assert_eq!(ds.len(), suite().len());
}
