//! Negative CLI tests: every binary in this crate answers invalid input
//! with a one-line diagnostic on stderr and exit code 2 — never a panic,
//! never a silent fallback. (The serve crate holds the same tests for
//! `hmm-serve` and `hmm-loadgen`.)

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

/// The shared convention: exit 2, exactly one stderr line, naming the
/// offending input.
fn assert_one_line_exit2(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "diagnostic must be one line, got: {stderr:?}"
    );
    assert!(stderr.contains(needle), "wanted '{needle}' in: {stderr}");
    assert!(!stderr.to_lowercase().contains("panic"), "{stderr}");
}

#[test]
fn hmm_sim_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-sim");
    let base = ["--workload", "pgbench", "--mode", "live"];
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        args
    }
    assert_one_line_exit2(&run(bin, &with(&base, &["--bogus"])), "--bogus");
    assert_one_line_exit2(&run(bin, &["--workload", "warehouse", "--mode", "live"]), "warehouse");
    assert_one_line_exit2(&run(bin, &["--workload", "pgbench", "--mode", "turbo"]), "turbo");
    assert_one_line_exit2(&run(bin, &with(&base, &["--page", "3K"])), "power of two");
    assert_one_line_exit2(&run(bin, &with(&base, &["--accesses", "many"])), "many");
    assert_one_line_exit2(&run(bin, &with(&base, &["--seed"])), "--seed");
    assert_one_line_exit2(&run(bin, &with(&base, &["--faults", "bogus=1"])), "bogus");
}

/// `--scheme`/`--policy` validation: unknown tokens, scheme/mode
/// conflicts and no-effect policies all answer with the same one-line
/// exit-2 convention before any simulation state is built.
#[test]
fn hmm_sim_rejects_scheme_misuse_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-sim");
    let base = ["--workload", "pgbench"];
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        args
    }
    assert_one_line_exit2(&run(bin, &with(&base, &["--mode", "live", "--scheme", "l5"])), "l5");
    assert_one_line_exit2(&run(bin, &with(&base, &["--mode", "live", "--policy", "fifo"])), "fifo");
    // The L4-cache baseline manages placement itself: any migration mode
    // is a contradiction, caught before the run starts.
    for mode in ["on", "static", "n", "n-1", "live"] {
        assert_one_line_exit2(
            &run(bin, &with(&base, &["--mode", mode, "--scheme", "l4cache"])),
            "only composes with mode 'off'",
        );
    }
    // A migration policy without a migration engine is silently dead
    // configuration; refuse it loudly instead.
    assert_one_line_exit2(
        &run(bin, &with(&base, &["--mode", "off", "--scheme", "l4cache", "--policy", "mlq"])),
        "no effect",
    );
    assert_one_line_exit2(&run(bin, &with(&base, &["--mode", "live", "--scheme"])), "--scheme");
}

/// The positive side of the same surface: each scheme actually runs, and
/// only non-default schemes add report lines (the hetero report is
/// pinned byte-for-byte by the goldens).
#[test]
fn hmm_sim_runs_every_scheme() {
    let bin = env!("CARGO_BIN_EXE_hmm-sim");
    let quick = ["--accesses", "4000", "--warmup", "1000", "--scale", "64"];
    fn with<'a>(extra: &[&'a str], quick: &[&'a str]) -> Vec<&'a str> {
        let mut args = extra.to_vec();
        args.extend_from_slice(quick);
        args
    }
    let hetero = run(bin, &with(&["--workload", "pgbench", "--mode", "live"], &quick));
    assert!(hetero.status.success());
    let text = String::from_utf8_lossy(&hetero.stdout).to_string();
    assert!(!text.contains("scheme"), "default report must not name a scheme:\n{text}");
    assert!(!text.contains("endurance"), "hetero must not report wear:\n{text}");

    let l4 =
        run(bin, &with(&["--workload", "pgbench", "--mode", "off", "--scheme", "l4cache"], &quick));
    assert!(l4.status.success(), "stderr: {}", String::from_utf8_lossy(&l4.stderr));
    let text = String::from_utf8_lossy(&l4.stdout).to_string();
    assert!(text.contains("scheme            : l4cache"), "{text}");

    let pcm =
        run(bin, &with(&["--workload", "pgbench", "--mode", "live", "--scheme", "pcm"], &quick));
    assert!(pcm.status.success(), "stderr: {}", String::from_utf8_lossy(&pcm.stderr));
    let text = String::from_utf8_lossy(&pcm.stdout).to_string();
    assert!(text.contains("scheme            : pcm"), "{text}");
    assert!(text.contains("endurance"), "pcm must report wear counters:\n{text}");

    let mlq =
        run(bin, &with(&["--workload", "pgbench", "--mode", "live", "--policy", "mlq"], &quick));
    assert!(mlq.status.success(), "stderr: {}", String::from_utf8_lossy(&mlq.stderr));
    let text = String::from_utf8_lossy(&mlq.stdout).to_string();
    assert!(text.contains("migration policy mlq"), "{text}");
}

#[test]
fn hmm_bench_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-bench");
    assert_one_line_exit2(&run(bin, &["frobnicate"]), "frobnicate");
    assert_one_line_exit2(&run(bin, &["perf", "--wat"]), "--wat");
    assert_one_line_exit2(&run(bin, &["sweep"]), "--spec or --doc");
    assert_one_line_exit2(&run(bin, &["sweep", "--spec"]), "--spec");
    assert_one_line_exit2(&run(bin, &["sweep", "--spec", "{}", "--doc", "x"]), "exactly one");
    assert_one_line_exit2(&run(bin, &["sweep", "--spec", "{}", "--max-cells", "0"]), "0");
}

/// The `perf` flag surface added for local iteration: `--scenario`
/// validates its id against the pinned suite, and `--compare` is an
/// offline-only mode that admits no measurement flags.
#[test]
fn hmm_bench_perf_flag_validation() {
    let bin = env!("CARGO_BIN_EXE_hmm-bench");
    assert_one_line_exit2(&run(bin, &["perf", "--scenario"]), "--scenario");
    let out = run(bin, &["perf", "--scenario", "nope/bogus"]);
    assert_one_line_exit2(&out, "nope/bogus");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("n/pgbench"), "diagnostic must list valid ids: {stderr}");
    assert_one_line_exit2(&run(bin, &["perf", "--compare"]), "--compare");
    assert_one_line_exit2(&run(bin, &["perf", "--compare", "only-one.json"]), "--compare");
    assert_one_line_exit2(
        &run(bin, &["perf", "--compare", "a.json", "b.json", "--quick"]),
        "offline diff",
    );
    for bad in ["0", "100", "-5", "abc"] {
        let out = run(bin, &["perf", "--compare", "a", "b", "--threshold", bad]);
        assert_one_line_exit2(&out, bad);
    }
}

/// A minimal valid `hmm-bench-perf-v1` report with one scenario row.
fn tiny_report(id: &str, aps: f64) -> String {
    format!(
        concat!(
            r#"{{"schema":"hmm-bench-perf-v1","bench_pr":7,"quick":true,"samples":1,"#,
            r#""scenarios":[{{"id":"{id}","accesses":100,"wall_ns_p50":10,"wall_ns_min":9,"#,
            r#""wall_ns_max":11,"spread":0.2,"accesses_per_sec":{aps},"#,
            r#""digest":"00000000deadbeef","mean_latency_cycles":50.0,"on_fraction":0.5}}]}}"#
        ),
        id = id,
        aps = aps
    )
}

/// Offline `--compare` exercises the full exit-code contract: 0 when
/// clean, 1 on regression (or unreadable/malformed input), threshold
/// tunable; nothing is measured or written.
#[test]
fn hmm_bench_perf_compare_offline() {
    let bin = env!("CARGO_BIN_EXE_hmm-bench");
    let dir = std::env::temp_dir().join(format!("hmm-bench-compare-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let save = |name: &str, text: &str| {
        let p = dir.join(name);
        std::fs::write(&p, text).unwrap();
        p.to_str().unwrap().to_string()
    };
    let base = save("base.json", &tiny_report("n/mg", 100.0));
    let same = save("same.json", &tiny_report("n/mg", 101.0));
    let slow = save("slow.json", &tiny_report("n/mg", 10.0));
    let junk = save("junk.json", "{ not json");

    let ok = run(bin, &["perf", "--compare", &same, &base]);
    assert_eq!(ok.status.code(), Some(0), "{}", String::from_utf8_lossy(&ok.stderr));
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("no regressions"), "{stdout}");

    let bad = run(bin, &["perf", "--compare", &slow, &base]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("REGRESSION"));

    // A 90% drop passes when the caller relaxes the threshold past it.
    let lax = run(bin, &["perf", "--compare", &slow, &base, "--threshold", "95"]);
    assert_eq!(lax.status.code(), Some(0), "{}", String::from_utf8_lossy(&lax.stderr));

    let unread = run(bin, &["perf", "--compare", "/nonexistent/a.json", &base]);
    assert_eq!(unread.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&unread.stderr).contains("reading /nonexistent/a.json"));

    let malformed = run(bin, &["perf", "--compare", &junk, &base]);
    assert_eq!(malformed.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&malformed.stderr).contains("compare failed"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Runtime failures in `hmm-bench sweep` (missing files, failed runs)
/// exit 1 with a one-line diagnostic, distinct from usage errors.
#[test]
fn hmm_bench_sweep_reports_runtime_errors() {
    let bin = env!("CARGO_BIN_EXE_hmm-bench");
    for (args, needle) in [
        (vec!["sweep", "--spec", "@/nonexistent/spec.json"], "reading sweep spec"),
        (vec!["sweep", "--doc", "/nonexistent/figures.json"], "reading figures document"),
        (vec!["sweep", "--spec", "not json"], "sweep failed"),
        // A scheme axis with a bogus value expands fine but fails cell
        // validation — same runtime-error surface, same one line.
        (
            vec!["sweep", "--spec", r#"{"workload":"pgbench","mode":"live","scheme":"l5"}"#],
            "sweep failed",
        ),
    ] {
        let out = run(bin, &args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
        assert_eq!(stderr.trim_end().lines().count(), 1, "one line, got: {stderr:?}");
        assert!(stderr.contains(needle), "wanted '{needle}' in: {stderr}");
    }
}

/// A tiny grid runs in-process and renders both tables; `--out` saves
/// the figures document, which `--doc` then renders identically.
#[test]
fn hmm_bench_sweep_runs_a_small_grid() {
    let bin = env!("CARGO_BIN_EXE_hmm-bench");
    let spec = r#"{"workload":"pgbench","mode":["static","live"],"accesses":3000,"scale":64}"#;
    let dir = std::env::temp_dir().join(format!("hmm-bench-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let doc_path = dir.join("figures.json");
    let doc_path = doc_path.to_str().unwrap();

    let out = run(bin, &["sweep", "--spec", spec, "--out", doc_path]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== sweep figures =="), "{stdout}");
    assert!(stdout.contains("== sweep totals =="), "{stdout}");
    assert!(stdout.contains(&format!("wrote {doc_path}")), "{stdout}");

    let again = run(bin, &["sweep", "--doc", doc_path]);
    assert!(again.status.success(), "stderr: {}", String::from_utf8_lossy(&again.stderr));
    let rendered = String::from_utf8_lossy(&again.stdout);
    let tables = stdout.strip_suffix(&format!("wrote {doc_path}\n")).unwrap();
    assert_eq!(rendered, tables, "--doc must render the saved document identically");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figures_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_figures");
    assert_one_line_exit2(&run(bin, &["fig99"]), "fig99");
    assert_one_line_exit2(&run(bin, &["--fast"]), "--fast");
    assert_one_line_exit2(&run(bin, &["table1", "table2"]), "more than one");
}

/// Valid invocations of the cheap experiments still succeed after the
/// flag-parsing tightening.
#[test]
fn figures_still_runs_static_tables() {
    let bin = env!("CARGO_BIN_EXE_figures");
    let out = run(bin, &["table1", "--quick"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "{stdout}");
}
