//! Negative CLI tests: every binary in this crate answers invalid input
//! with a one-line diagnostic on stderr and exit code 2 — never a panic,
//! never a silent fallback. (The serve crate holds the same tests for
//! `hmm-serve` and `hmm-loadgen`.)

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"))
}

/// The shared convention: exit 2, exactly one stderr line, naming the
/// offending input.
fn assert_one_line_exit2(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "diagnostic must be one line, got: {stderr:?}"
    );
    assert!(stderr.contains(needle), "wanted '{needle}' in: {stderr}");
    assert!(!stderr.to_lowercase().contains("panic"), "{stderr}");
}

#[test]
fn hmm_sim_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-sim");
    let base = ["--workload", "pgbench", "--mode", "live"];
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        args
    }
    assert_one_line_exit2(&run(bin, &with(&base, &["--bogus"])), "--bogus");
    assert_one_line_exit2(&run(bin, &["--workload", "warehouse", "--mode", "live"]), "warehouse");
    assert_one_line_exit2(&run(bin, &["--workload", "pgbench", "--mode", "turbo"]), "turbo");
    assert_one_line_exit2(&run(bin, &with(&base, &["--page", "3K"])), "power of two");
    assert_one_line_exit2(&run(bin, &with(&base, &["--accesses", "many"])), "many");
    assert_one_line_exit2(&run(bin, &with(&base, &["--seed"])), "--seed");
    assert_one_line_exit2(&run(bin, &with(&base, &["--faults", "bogus=1"])), "bogus");
}

#[test]
fn hmm_bench_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_hmm-bench");
    assert_one_line_exit2(&run(bin, &["frobnicate"]), "frobnicate");
    assert_one_line_exit2(&run(bin, &["perf", "--wat"]), "--wat");
}

#[test]
fn figures_rejects_invalid_input_with_one_line() {
    let bin = env!("CARGO_BIN_EXE_figures");
    assert_one_line_exit2(&run(bin, &["fig99"]), "fig99");
    assert_one_line_exit2(&run(bin, &["--fast"]), "--fast");
    assert_one_line_exit2(&run(bin, &["table1", "table2"]), "more than one");
}

/// Valid invocations of the cheap experiments still succeed after the
/// flag-parsing tightening.
#[test]
fn figures_still_runs_static_tables() {
    let bin = env!("CARGO_BIN_EXE_figures");
    let out = run(bin, &["table1", "--quick"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "{stdout}");
}
