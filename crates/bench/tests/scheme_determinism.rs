//! Bit-determinism regression gate for the scheme framework.
//!
//! The `PlacementScheme` refactor routed every run through trait-object
//! dispatch; these tests pin that the default path did not move by a
//! single byte. Two layers:
//!
//! * the 18 stdout goldens in `tests/goldens/` — `hmm-sim` report text
//!   for every workload × mode combination at the quick golden scale,
//!   compared byte-for-byte (the default scheme must not even gain a
//!   report line);
//! * the perf suite's sim-stat digests, pinned to the values the suite
//!   produced *before* the refactor — a digest is FNV-1a over the exact
//!   simulated counters, so any behavioural drift (not just formatting)
//!   trips it.
//!
//! If a change legitimately alters simulated behaviour, re-capture the
//! goldens with the commands in `tests/goldens/` CI job and update the
//! pinned digests here — in the same commit, with the reason in its
//! message.

use std::path::PathBuf;
use std::process::Command;

use hmm_bench::perf::{scenario_digest, suite};

const WORKLOADS: [&str; 3] = ["pgbench", "specjbb", "mg"];
const MODES: [&str; 6] = ["off", "on", "static", "n", "n-1", "live"];

/// The quick golden configuration: small enough for CI, large enough to
/// exercise warm-up, epochs and migration.
const GOLDEN_ARGS: [&str; 10] = [
    "--page",
    "64K",
    "--interval",
    "2000",
    "--accesses",
    "60000",
    "--warmup",
    "10000",
    "--scale",
    "64",
];

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

fn sim_stdout(args: &[&str]) -> String {
    let bin = env!("CARGO_BIN_EXE_hmm-sim");
    let out = Command::new(bin).args(args).output().unwrap_or_else(|e| panic!("spawn: {e}"));
    assert!(
        out.status.success(),
        "hmm-sim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("report must be UTF-8")
}

#[test]
fn hetero_stdout_matches_all_18_goldens() {
    for wl in WORKLOADS {
        for mode in MODES {
            let golden_path = goldens_dir().join(format!("hetero_{wl}_{mode}.txt"));
            let golden = std::fs::read_to_string(&golden_path)
                .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
            let mut args = vec!["--workload", wl, "--mode", mode];
            args.extend_from_slice(&GOLDEN_ARGS);
            let got = sim_stdout(&args);
            assert_eq!(
                got,
                golden,
                "stdout drifted from {} — the default scheme must stay bit-identical",
                golden_path.display()
            );
        }
    }
}

/// Spelling the default scheme out loud must not change anything either:
/// `--scheme hetero` and no `--scheme` are the same configuration, not
/// two configurations that happen to agree.
#[test]
fn explicit_default_scheme_is_the_default() {
    for (wl, mode) in [("pgbench", "live"), ("mg", "n")] {
        let mut implicit = vec!["--workload", wl, "--mode", mode];
        implicit.extend_from_slice(&GOLDEN_ARGS);
        let mut explicit = implicit.clone();
        explicit.extend_from_slice(&["--scheme", "hetero", "--policy", "hotcold"]);
        assert_eq!(sim_stdout(&implicit), sim_stdout(&explicit), "{wl}/{mode}");
    }
}

/// The non-default goldens pin the new schemes the same way — they may
/// only change together with a commit that explains why.
#[test]
fn scheme_stdout_matches_goldens() {
    for wl in WORKLOADS {
        for (golden, extra) in [
            (format!("l4cache_{wl}_off.txt"), vec!["--mode", "off", "--scheme", "l4cache"]),
            (format!("pcm_{wl}_live.txt"), vec!["--mode", "live", "--scheme", "pcm"]),
            (format!("mlq_{wl}_live.txt"), vec!["--mode", "live", "--policy", "mlq"]),
        ] {
            let golden_path = goldens_dir().join(&golden);
            let want = std::fs::read_to_string(&golden_path)
                .unwrap_or_else(|e| panic!("{}: {e}", golden_path.display()));
            let mut args = vec!["--workload", wl];
            args.extend(extra);
            args.extend_from_slice(&GOLDEN_ARGS);
            assert_eq!(sim_stdout(&args), want, "stdout drifted from {}", golden_path.display());
        }
    }
}

/// Digests the perf suite produced at the commit *before* the scheme
/// framework landed. `scenario_digest` hashes exact simulated counters,
/// so this catches behavioural drift that formatting-level goldens
/// cannot (and vice versa).
const PINNED_QUICK_DIGESTS: [(&str, u64); 9] = [
    ("n/pgbench", 0xf70153371ccf09d2),
    ("n/specjbb", 0x04421fab8de99841),
    ("n/mg", 0x32e8f2e81aa76ae2),
    ("n1/pgbench", 0xb8d9f134ba6b6927),
    ("n1/specjbb", 0x34b4c4ffe67ecb29),
    ("n1/mg", 0x7408f860572b2758),
    ("live/pgbench", 0x6023177b129c24c3),
    ("live/specjbb", 0x4f426585f9a8c123),
    ("live/mg", 0x36c9eb005f866bff),
];

#[test]
fn perf_suite_digests_match_pre_refactor_values() {
    let scenarios = suite();
    assert_eq!(scenarios.len(), PINNED_QUICK_DIGESTS.len(), "suite shape changed");
    for (s, (id, want)) in scenarios.iter().zip(PINNED_QUICK_DIGESTS) {
        assert_eq!(s.id, id, "suite order changed");
        let got = scenario_digest(s, true);
        assert_eq!(got, want, "digest for {id} drifted: got {got:#018x}, pinned {want:#018x}",);
    }
}
