//! Cost of the telemetry hooks on the controller demand path.
//!
//! The zero-cost claim: a controller built with the default [`NullSink`]
//! must run as fast as one would without any instrumentation, because
//! `NullSink::enabled` is an `#[inline(always)] false` that folds every
//! event-construction branch away. A disabled [`Recorder`] costs one
//! predictable branch per hook; `counters`/`full` pay for real recording.

use hmm_bench::harness::{black_box, BenchmarkId, Criterion, Throughput};
use hmm_bench::{criterion_group, criterion_main};
use hmm_core::{ControllerConfig, HeteroController, MigrationDesign, Mode};
use hmm_sim_base::addr::PhysAddr;
use hmm_sim_base::config::{MachineConfig, MemoryGeometry};
use hmm_sim_base::SimRng;
use hmm_telemetry::{Recorder, RecorderConfig, TelemetryLevel, TelemetrySink};

fn config() -> ControllerConfig {
    let geometry = MemoryGeometry {
        total_bytes: 64 << 20,
        on_package_bytes: 8 << 20,
        page_shift: 16,
        sub_block_shift: 12,
    };
    ControllerConfig {
        machine: MachineConfig { geometry, ..MachineConfig::default() },
        swap_interval: 1_000,
        os_assisted: Some(false),
        ..ControllerConfig::paper_default(Mode::Dynamic(MigrationDesign::LiveMigration))
    }
}

/// Push `n` demand accesses through a controller wired to `sink` and
/// return the latency sum (so the work cannot be optimised out).
fn demand_path<S: TelemetrySink + Clone + Send>(sink: S, n: u64) -> u64 {
    let mut ctrl = HeteroController::with_sink(config(), sink);
    let mut rng = SimRng::new(17);
    let mut total = 0u64;
    for i in 0..n {
        let now = i * 10;
        let addr = if rng.chance(0.7) {
            (40 << 20) + (rng.below(2 << 20) & !63)
        } else {
            rng.below(63 << 20) & !63
        };
        ctrl.access(now, PhysAddr(addr), rng.chance(0.3));
        ctrl.advance(now);
        for c in ctrl.drain() {
            total += c.breakdown.total();
        }
    }
    ctrl.flush();
    for c in ctrl.drain() {
        total += c.breakdown.total();
    }
    total
}

fn bench_sink_levels(c: &mut Criterion) {
    let n = 30_000u64;
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));

    g.bench_function("null_sink", |b| {
        b.iter(|| black_box(demand_path(hmm_telemetry::NullSink, n)))
    });
    for level in [TelemetryLevel::Off, TelemetryLevel::Counters, TelemetryLevel::Full] {
        g.bench_with_input(BenchmarkId::new("recorder", level.label()), &level, |b, &level| {
            b.iter(|| {
                let rec = Recorder::new(RecorderConfig::with_level(level));
                black_box(demand_path(rec, n))
            })
        });
    }
    g.finish();

    // One checked run, for the log: both paths must simulate identically.
    let baseline = demand_path(hmm_telemetry::NullSink, n);
    let recorded = demand_path(Recorder::with_level(TelemetryLevel::Full), n);
    assert_eq!(baseline, recorded, "telemetry must not perturb the simulation");
    eprintln!("[shape] latency sum identical across sinks: {baseline}");
}

criterion_group!(benches, bench_sink_levels);
criterion_main!(benches);
