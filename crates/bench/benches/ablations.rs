//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * FR-FCFS vs FCFS scheduling;
//! * the on-package many-bank structure (128 banks vs an 8-bank device);
//! * multi-queue MRU vs a naive single-level recency list;
//! * copy-engine pacing.
//!
//! Each prints the simulated metric it ablates alongside the host-time
//! measurement.

use hmm_bench::harness::{black_box, BenchmarkId, Criterion};
use hmm_bench::{criterion_group, criterion_main};
use hmm_core::{MultiQueueMru, SlotClock};
use hmm_dram::{DeviceProfile, DramRegion, DramTiming, SchedPolicy, Transaction};
use hmm_sim_base::SimRng;

fn region_mean_latency(profile: DeviceProfile, policy: SchedPolicy) -> f64 {
    let mut r = DramRegion::new(profile, &Default::default(), policy);
    let mut rng = SimRng::new(11);
    let n = 30_000u64;
    for i in 0..n {
        // Mixed pattern: 60% within a hot 2 MB region (row locality),
        // 40% random.
        let addr =
            if rng.chance(0.6) { rng.below(2 << 20) & !63 } else { rng.below(1 << 28) & !63 };
        r.enqueue(Transaction::demand(i, i * 18, addr, rng.chance(0.3)));
        r.advance(i * 18);
    }
    r.flush();
    let done = r.drain_completions();
    done.iter().map(|c| (c.breakdown.dram_core + c.breakdown.queuing) as f64).sum::<f64>()
        / done.len() as f64
}

fn bench_sched_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scheduler");
    g.sample_size(10);
    for policy in [SchedPolicy::FrFcfs, SchedPolicy::Fcfs] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{policy:?}")), &policy, |b, &p| {
            b.iter(|| black_box(region_mean_latency(DeviceProfile::off_package_ddr3(), p)))
        });
        eprintln!(
            "[shape] {policy:?}: mean DRAM latency {:.1} cycles",
            region_mean_latency(DeviceProfile::off_package_ddr3(), policy)
        );
    }
    g.finish();
}

fn bench_bank_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_banks");
    g.sample_size(10);
    // The paper's Section II claim: many banks collapse the queuing delay.
    let few = DeviceProfile {
        channels: 8,
        ranks_per_channel: 1,
        banks_per_rank: 1,
        ..DeviceProfile::on_package()
    };
    let many = DeviceProfile::on_package();
    for (name, p) in [("8_banks", few), ("128_banks", many)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| black_box(region_mean_latency(*p, SchedPolicy::FrFcfs)))
        });
        eprintln!(
            "[shape] {name}: mean DRAM latency {:.1} cycles",
            region_mean_latency(p, SchedPolicy::FrFcfs)
        );
    }
    g.finish();
}

fn bench_mru_policy(c: &mut Criterion) {
    // Multi-queue vs naive: how often does each surface a genuinely hot
    // page under a zipf stream with streaming pollution?
    fn mq_quality(naive: bool) -> f64 {
        let z = hmm_sim_base::rng::Zipf::new(4096, 1.1);
        let mut rng = SimRng::new(5);
        let mut mq = if naive { MultiQueueMru::new(1, 30) } else { MultiQueueMru::paper_default() };
        let mut good = 0u32;
        let rounds = 200;
        for _ in 0..rounds {
            for i in 0..500u64 {
                // zipf demand + a streaming page per step.
                mq.touch(z.sample(&mut rng) as u64, 0);
                mq.touch(1_000_000 + i, 0);
            }
            if let Some((hot, _, _)) = mq.hottest(|_| false) {
                if hot < 16 {
                    good += 1;
                }
            }
        }
        good as f64 / rounds as f64
    }
    let mut g = c.benchmark_group("ablation_mru");
    g.sample_size(10);
    for naive in [false, true] {
        let name = if naive { "naive_single_level" } else { "multi_queue" };
        g.bench_with_input(BenchmarkId::from_parameter(name), &naive, |b, &n| {
            b.iter(|| black_box(mq_quality(n)))
        });
        eprintln!("[shape] {name}: hot-page identification rate {:.2}", mq_quality(naive));
    }
    g.finish();
}

fn bench_clock_monitor(c: &mut Criterion) {
    c.bench_function("slot_clock_coldest_4096", |b| {
        let mut clock = SlotClock::new(4096);
        let mut rng = SimRng::new(9);
        for _ in 0..2048 {
            clock.touch(rng.below(4096) as u32);
        }
        b.iter(|| black_box(clock.coldest(|_| false)))
    });
}

fn bench_on_package_timing(c: &mut Criterion) {
    // Sanity ablation: the on-package part's faster I/O matters.
    let slow_io = DeviceProfile { timing: DramTiming::ddr3_1333(), ..DeviceProfile::on_package() };
    let fast_io = DeviceProfile::on_package();
    let mut g = c.benchmark_group("ablation_io_speed");
    g.sample_size(10);
    for (name, p) in [("commodity_io", slow_io), ("on_package_io", fast_io)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &p, |b, p| {
            b.iter(|| black_box(region_mean_latency(*p, SchedPolicy::FrFcfs)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sched_policy,
    bench_bank_count,
    bench_mru_policy,
    bench_clock_monitor,
    bench_on_package_timing
);
criterion_main!(benches);
