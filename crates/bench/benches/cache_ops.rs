//! Cache-model throughput: accesses per second through one cache and
//! through the full SRAM hierarchy.

use hmm_bench::harness::{black_box, Criterion, Throughput};
use hmm_bench::{criterion_group, criterion_main};
use hmm_cache::{
    CacheConfig, DramCache, DramCacheConfig, Hierarchy, HierarchyConfig, SetAssocCache,
};
use hmm_sim_base::addr::{LineAddr, PhysAddr};
use hmm_sim_base::config::LatencyConfig;
use hmm_sim_base::SimRng;

fn bench_set_assoc(c: &mut Criterion) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(n));
    g.bench_function("set_assoc_zipf", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::new(1 << 20, 16));
        let z = hmm_sim_base::rng::Zipf::new(100_000, 0.9);
        let mut rng = SimRng::new(3);
        b.iter(|| {
            for _ in 0..n {
                let line = z.sample(&mut rng) as u64;
                black_box(cache.access(LineAddr(line), false));
            }
        })
    });
    g.bench_function("hierarchy_mixed", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default());
        let mut rng = SimRng::new(5);
        b.iter(|| {
            for i in 0..n {
                let addr = if rng.chance(0.7) {
                    rng.below(1 << 22) & !63
                } else {
                    rng.below(1 << 30) & !63
                };
                black_box(h.access((i % 4) as usize, PhysAddr(addr), rng.chance(0.3)));
            }
        })
    });
    g.bench_function("dram_cache_l4", |b| {
        let mut l4 = DramCache::new(
            DramCacheConfig { array_bytes: 64 << 20, line_bytes: 64 },
            &LatencyConfig::default(),
        );
        let mut rng = SimRng::new(7);
        b.iter(|| {
            for _ in 0..n {
                black_box(l4.access(LineAddr(rng.below(1 << 22)), rng.chance(0.3)));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_set_assoc);
criterion_main!(benches);
