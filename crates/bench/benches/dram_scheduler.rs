//! Throughput of the DRAM timing model: transactions scheduled per second
//! of host time, under streaming and random patterns.

use hmm_bench::harness::{black_box, BenchmarkId, Criterion, Throughput};
use hmm_bench::{criterion_group, criterion_main};
use hmm_dram::{DeviceProfile, DramRegion, SchedPolicy, Transaction};
use hmm_sim_base::SimRng;

fn run_pattern(profile: DeviceProfile, policy: SchedPolicy, random: bool, n: u64) -> usize {
    let mut r = DramRegion::new(profile, &Default::default(), policy);
    let mut rng = SimRng::new(1);
    for i in 0..n {
        let addr = if random { rng.below(1 << 28) & !63 } else { i * 64 };
        r.enqueue(Transaction::demand(i, i * 16, addr, i % 3 == 0));
        if i % 8 == 0 {
            r.advance(i * 16);
        }
    }
    r.flush();
    r.drain_completions().len()
}

fn bench_region(c: &mut Criterion) {
    let n = 20_000u64;
    let mut g = c.benchmark_group("dram_region");
    g.throughput(Throughput::Elements(n));
    for (name, profile) in [
        ("off_package", DeviceProfile::off_package_ddr3()),
        ("on_package", DeviceProfile::on_package()),
    ] {
        g.bench_with_input(BenchmarkId::new("stream", name), &profile, |b, p| {
            b.iter(|| black_box(run_pattern(*p, SchedPolicy::FrFcfs, false, n)))
        });
        g.bench_with_input(BenchmarkId::new("random", name), &profile, |b, p| {
            b.iter(|| black_box(run_pattern(*p, SchedPolicy::FrFcfs, true, n)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_region);
criterion_main!(benches);
