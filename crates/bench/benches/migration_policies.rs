//! End-to-end simulation throughput per migration design. This is both a
//! performance benchmark (host records/s) and a shape check: the printed
//! simulated latencies show N >= N-1 >= Live at coarse granularity.

use hmm_bench::harness::{black_box, BenchmarkId, Criterion, Throughput};
use hmm_bench::{criterion_group, criterion_main};
use hmm_core::{MigrationDesign, Mode};
use hmm_sim_base::config::SimScale;
use hmm_simulator::driver::{run, RunConfig};
use hmm_workloads::WorkloadId;

fn cfg(design: MigrationDesign) -> RunConfig {
    RunConfig {
        scale: SimScale { divisor: 64 },
        accesses: 120_000,
        warmup: 20_000,
        page_shift: 16,
        swap_interval: 1_000,
        ..RunConfig::paper(WorkloadId::Pgbench, Mode::Dynamic(design))
    }
}

fn bench_designs(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration_designs");
    g.sample_size(10);
    g.throughput(Throughput::Elements(120_000));
    for design in [MigrationDesign::N, MigrationDesign::NMinusOne, MigrationDesign::LiveMigration] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{design:?}")), &design, |b, &d| {
            b.iter(|| black_box(run(&cfg(d)).mean_latency()))
        });
    }
    g.finish();

    // Print the simulated-latency comparison once, for the log.
    for design in [MigrationDesign::N, MigrationDesign::NMinusOne, MigrationDesign::LiveMigration] {
        let r = run(&cfg(design));
        eprintln!(
            "[shape] {design:?}: mean latency {:.1} cycles, on-package {:.2}, swaps {}",
            r.mean_latency(),
            r.on_fraction(),
            r.swaps.map(|s| s.completed).unwrap_or(0)
        );
    }
}

criterion_group!(benches, bench_designs);
criterion_main!(benches);
