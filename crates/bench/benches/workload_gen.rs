//! Trace-generation throughput for every workload in the catalog.

use hmm_bench::harness::{black_box, BenchmarkId, Criterion, Throughput};
use hmm_bench::{criterion_group, criterion_main};
use hmm_sim_base::config::SimScale;
use hmm_workloads::{workload, WorkloadId};

fn bench_generators(c: &mut Criterion) {
    let n = 100_000usize;
    let scale = SimScale { divisor: 16 };
    let mut g = c.benchmark_group("workload_gen");
    g.throughput(Throughput::Elements(n as u64));
    for id in WorkloadId::trace_study() {
        let w = workload(id, &scale);
        g.bench_with_input(BenchmarkId::from_parameter(id.name()), &w, |b, w| {
            b.iter(|| {
                let mut acc = 0u64;
                for r in w.iter(1).take(n) {
                    acc ^= r.addr.0;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
