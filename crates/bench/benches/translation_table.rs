//! Microbenchmarks of the translation table: the RAM/CAM lookup is on the
//! critical path of every memory access, so it must stay O(1)-ish even at
//! the 4 KB granularity where the table has 128K rows.

use hmm_bench::harness::{black_box, BenchmarkId, Criterion};
use hmm_bench::{criterion_group, criterion_main};
use hmm_core::table::TranslationTable;
use hmm_sim_base::addr::{MacroPageId, SubBlockId};

fn bench_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate");
    for slots in [128u64, 4096, 131_072] {
        let total = slots * 8;
        let mut t = TranslationTable::new(slots, total, true);
        // Populate some swaps so the CAM is non-trivial.
        for i in 0..slots / 4 {
            t.set_swapped(i as u32, slots + i);
        }
        g.bench_with_input(BenchmarkId::new("ram_hit", slots), &t, |b, t| {
            let mut p = 0u64;
            b.iter(|| {
                p = (p + 7) % (slots / 4);
                black_box(t.translate(MacroPageId(slots / 4 + p), SubBlockId(0)))
            })
        });
        g.bench_with_input(BenchmarkId::new("cam_hit", slots), &t, |b, t| {
            let mut p = 0u64;
            b.iter(|| {
                p = (p + 7) % (slots / 4);
                black_box(t.translate(MacroPageId(slots + p), SubBlockId(0)))
            })
        });
        g.bench_with_input(BenchmarkId::new("os_page", slots), &t, |b, t| {
            let mut p = 0u64;
            b.iter(|| {
                p = (p + 7) % slots;
                black_box(t.translate(MacroPageId(slots * 2 + p), SubBlockId(0)))
            })
        });
    }
    g.finish();
}

fn bench_swap_ops(c: &mut Criterion) {
    c.bench_function("swap_table_ops", |b| {
        b.iter(|| {
            let mut t = TranslationTable::new(256, 2048, true);
            for i in 0..32u64 {
                let slot = t.empty_slot().unwrap();
                t.begin_fill_into_empty(slot, 300 + i, hmm_core::MachinePage(300 + i), 1);
                t.mark_sub_block_filled(slot, SubBlockId(0));
                t.clear_p(slot);
                t.retire_to_empty(i as u32);
            }
            black_box(t)
        })
    });
}

criterion_group!(benches, bench_translate, bench_swap_ops);
criterion_main!(benches);
