//! `hmm-bench` — the repo's performance benchmark CLI.
//!
//! The `perf` subcommand runs the pinned scenario suite (see
//! `hmm_bench::perf`) — nine simulator cells plus the loopback serve
//! path — prints a human-readable table, writes the stable
//! `BENCH_*.json` report, and optionally gates against a committed
//! baseline. The `sweep` subcommand renders the paper's figure tables
//! from a sweep: either an `hmm-sweep-figures-v1` document saved from
//! `GET /v1/sweeps/<id>` (`--doc`), or a grid spec run in-process
//! through the same pipeline the server uses (`--spec`).
//!
//! ```text
//! hmm-bench perf  [--quick] [--samples <k>] [--out <file>]
//!                 [--baseline <file>] [--threshold <pct>]
//!                 [--scenario <id>]...
//! hmm-bench perf  --compare <new.json> <baseline.json> [--threshold <pct>]
//! hmm-bench sweep (--spec <json|@file> | --doc <file>)
//!                 [--max-cells <n>] [--out <file>]
//! ```
//!
//! `--scenario` (repeatable) restricts the run to the named rows for
//! local iteration; unknown ids are rejected. `--compare` diffs two
//! existing reports offline — nothing is measured or written — and exits
//! 1 if any scenario regressed beyond the threshold.
//!
//! Exit codes: 0 success, 1 runtime failure (regression vs baseline,
//! unreadable input, failed sweep), 2 invalid usage.

use std::fs;

use hmm_bench::{cells, f1, render_table};
use hmm_bench::{perf, sweep};

fn usage() -> ! {
    eprintln!(
        "usage: hmm-bench perf [--quick] [--samples <k>] [--out <file>] \
         [--baseline <file>] [--threshold <pct>] [--scenario <id>]...\n\
         \x20      hmm-bench perf --compare <new.json> <baseline.json> \
         [--threshold <pct>]\n\
         \x20      hmm-bench sweep (--spec <json|@file> | --doc <file>) \
         [--max-cells <n>] [--out <file>]"
    );
    std::process::exit(2)
}

/// One-line diagnostic and exit 2 — invalid input must never panic.
fn fail(msg: &str) -> ! {
    eprintln!("hmm-bench: {msg}");
    std::process::exit(2)
}

struct PerfArgs {
    quick: bool,
    samples: usize,
    out: String,
    baseline: Option<String>,
    threshold: f64,
    scenarios: Vec<String>,
    compare: Option<(String, String)>,
}

fn parse_perf_args(args: &[String]) -> PerfArgs {
    let mut quick = false;
    let mut samples: Option<usize> = None;
    let mut out = String::from("BENCH_7.json");
    let mut baseline = None;
    let mut threshold = perf::DEFAULT_THRESHOLD;
    let mut scenarios = Vec::new();
    let mut compare = None;
    let mut measure_flag_seen = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if matches!(arg.as_str(), "--quick" | "--samples" | "--out" | "--baseline" | "--scenario") {
            measure_flag_seen = true;
        }
        match arg.as_str() {
            "--quick" => quick = true,
            "--samples" => {
                let v = it.next().unwrap_or_else(|| fail("--samples needs a value"));
                samples = match v.parse() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => fail(&format!("invalid --samples '{v}' (positive integer)")),
                };
            }
            "--out" => {
                out = it.next().unwrap_or_else(|| fail("--out needs a path")).clone();
            }
            "--baseline" => {
                baseline =
                    Some(it.next().unwrap_or_else(|| fail("--baseline needs a path")).clone());
            }
            "--threshold" => {
                let v = it.next().unwrap_or_else(|| fail("--threshold needs a value"));
                threshold = match v.trim_end_matches('%').parse::<f64>() {
                    Ok(p) if p > 0.0 && p < 100.0 => p / 100.0,
                    _ => fail(&format!("invalid --threshold '{v}' (percent in 0..100)")),
                };
            }
            "--scenario" => {
                scenarios.push(it.next().unwrap_or_else(|| fail("--scenario needs an id")).clone());
            }
            "--compare" => {
                let new = it.next().unwrap_or_else(|| fail("--compare needs two paths")).clone();
                let base = it.next().unwrap_or_else(|| fail("--compare needs two paths")).clone();
                compare = Some((new, base));
            }
            other => fail(&format!("unknown argument '{other}' for perf")),
        }
    }
    if compare.is_some() && measure_flag_seen {
        fail("--compare is an offline diff; it takes only --threshold");
    }
    // Quick mode defaults to fewer samples so the CI gate stays fast.
    let samples = samples.unwrap_or(if quick { 3 } else { 5 });
    PerfArgs { quick, samples, out, baseline, threshold, scenarios, compare }
}

/// Offline `--compare` mode: diff two existing reports, print the
/// per-scenario lines, and exit 1 on any regression beyond the
/// threshold. Nothing is measured and nothing is written.
fn perf_compare_offline(new_path: &str, base_path: &str, threshold: f64) -> ! {
    let read = |path: &str| {
        fs::read_to_string(path).unwrap_or_else(|e| abort(&format!("reading {path}: {e}")))
    };
    let (new_json, base_json) = (read(new_path), read(base_path));
    match perf::compare(&new_json, &base_json, threshold) {
        Ok(cmp) => {
            println!("comparing {new_path} vs {base_path} (threshold {:.0}%):", threshold * 100.0);
            for line in &cmp.lines {
                println!("  {line}");
            }
            if cmp.regressions.is_empty() {
                println!("no regressions");
                std::process::exit(0)
            }
            eprintln!(
                "hmm-bench: {} scenario(s) regressed beyond {:.0}%: {}",
                cmp.regressions.len(),
                threshold * 100.0,
                cmp.regressions.join(", ")
            );
            std::process::exit(1)
        }
        Err(e) => abort(&format!("compare failed: {e}")),
    }
}

fn cmd_perf(args: &[String]) -> ! {
    let a = parse_perf_args(args);
    if let Some((new_path, base_path)) = &a.compare {
        perf_compare_offline(new_path, base_path, a.threshold);
    }
    let selected = match perf::filter_ids(&a.scenarios) {
        Ok(ids) => ids,
        Err(e) => fail(&e),
    };
    // Snapshot the baseline before anything is written: `--out` defaults to
    // the committed baseline's path, so reading it only after the write
    // would silently compare the fresh report against itself (and the gate
    // would always pass).
    let baseline_text = a.baseline.as_ref().map(|path| match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hmm-bench: reading baseline {path}: {e}");
            std::process::exit(1);
        }
    });
    let rows = if selected.is_empty() {
        eprintln!(
            "running pinned perf suite ({} sim scenarios + serve path, {} samples each{})...",
            perf::suite().len(),
            a.samples,
            if a.quick { ", quick" } else { "" }
        );
        perf::measure_suite(a.quick, a.samples)
    } else {
        eprintln!(
            "running {} selected scenario(s), {} samples each{}...",
            selected.len(),
            a.samples,
            if a.quick { ", quick" } else { "" }
        );
        perf::measure_suite_filtered(a.quick, a.samples, &selected)
    };

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            cells([
                r.id.clone(),
                format!("{:.2}", r.wall_ns_p50 as f64 / 1e6),
                format!("{:.0}", r.spread * 100.0),
                format!("{:.2}", r.accesses_per_sec / 1e6),
                f1(r.mean_latency),
                format!("{:.1}", r.on_fraction * 100.0),
                perf::Digest::from_value(r.digest).hex(),
            ])
        })
        .collect();
    println!(
        "{}",
        render_table(
            "hmm-bench perf",
            &["scenario", "wall p50 (ms)", "spread%", "Macc/s", "mean lat", "on%", "digest"],
            &table,
        )
    );

    let json = perf::report_json(a.quick, a.samples, &rows);
    if let Err(e) = fs::write(&a.out, format!("{json}\n")) {
        eprintln!("hmm-bench: writing {}: {e}", a.out);
        std::process::exit(1);
    }
    println!("wrote {}", a.out);

    if let (Some(path), Some(base)) = (&a.baseline, &baseline_text) {
        match perf::compare(&json, base, a.threshold) {
            Ok(cmp) => {
                println!("\nbaseline comparison ({path}, threshold {:.0}%):", a.threshold * 100.0);
                for line in &cmp.lines {
                    println!("  {line}");
                }
                if cmp.regressions.is_empty() {
                    println!("no regressions");
                } else {
                    eprintln!(
                        "hmm-bench: {} scenario(s) regressed beyond {:.0}%: {}",
                        cmp.regressions.len(),
                        a.threshold * 100.0,
                        cmp.regressions.join(", ")
                    );
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("hmm-bench: baseline compare failed: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0)
}

/// One-line diagnostic and exit 1 — a well-formed invocation that failed
/// at runtime (unreadable file, failed run).
fn abort(msg: &str) -> ! {
    eprintln!("hmm-bench: {msg}");
    std::process::exit(1)
}

struct SweepArgs {
    spec: Option<String>,
    doc: Option<String>,
    max_cells: usize,
    out: Option<String>,
}

fn parse_sweep_args(args: &[String]) -> SweepArgs {
    let mut a = SweepArgs { spec: None, doc: None, max_cells: 1024, out: None };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => {
                a.spec = Some(it.next().unwrap_or_else(|| fail("--spec needs a value")).clone());
            }
            "--doc" => {
                a.doc = Some(it.next().unwrap_or_else(|| fail("--doc needs a path")).clone());
            }
            "--max-cells" => {
                let v = it.next().unwrap_or_else(|| fail("--max-cells needs a value"));
                a.max_cells = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => fail(&format!("invalid --max-cells '{v}' (positive integer)")),
                };
            }
            "--out" => {
                a.out = Some(it.next().unwrap_or_else(|| fail("--out needs a path")).clone());
            }
            other => fail(&format!("unknown argument '{other}' for sweep")),
        }
    }
    if a.spec.is_some() == a.doc.is_some() {
        fail("sweep needs exactly one of --spec or --doc");
    }
    a
}

fn cmd_sweep(args: &[String]) -> ! {
    let a = parse_sweep_args(args);
    let doc = if let Some(spec) = &a.spec {
        let spec_text = match spec.strip_prefix('@') {
            Some(path) => fs::read_to_string(path)
                .unwrap_or_else(|e| abort(&format!("reading sweep spec '{path}': {e}"))),
            None => spec.clone(),
        };
        sweep::figures_from_spec(&spec_text, a.max_cells)
            .unwrap_or_else(|e| abort(&format!("sweep failed: {e}")))
    } else {
        let path = a.doc.as_deref().unwrap();
        fs::read_to_string(path)
            .unwrap_or_else(|e| abort(&format!("reading figures document '{path}': {e}")))
    };
    let tables = sweep::render_figures(&doc).unwrap_or_else(|e| abort(&e));
    println!("{tables}");
    if let Some(out) = &a.out {
        if let Err(e) = fs::write(out, format!("{}\n", doc.trim_end())) {
            abort(&format!("writing {out}: {e}"));
        }
        println!("wrote {out}");
    }
    std::process::exit(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("perf") => cmd_perf(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some(other) => fail(&format!("unknown subcommand '{other}' (expected 'perf' or 'sweep')")),
        None => usage(),
    }
}
