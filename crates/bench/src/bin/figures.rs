//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! figures <experiment> [--quick|--bench|--full] [--json]
//!
//! experiments: table1 table2 table3 table4 fig4 fig5 fig10 fig11 fig12
//!              fig13 fig14 fig15 fig16 all
//! ```
//!
//! `--quick` (default) uses 1/64-scale footprints for a smoke run;
//! `--bench` uses 1/8 scale (the setting used for EXPERIMENTS.md);
//! `--full` uses the paper's exact sizes (hours of CPU time).
//! `--json` additionally dumps the simulated rows as JSON lines on stdout
//! (for the table/figure experiments that run simulations).

use hmm_bench::{cells, f1, f2, human_bytes, pct, render_table};
use hmm_core::{hardware_bits, MigrationDesign};
use hmm_sim_base::config::{LatencyConfig, MemoryGeometry, SimScale};
use hmm_simulator::experiments::{
    effectiveness_table, fig11_grid, fig15_capacity, fig16_power, GridConfig, INTERVALS,
    PAGE_SHIFTS,
};
use hmm_simulator::ipc::{ipc_for, Fig5Option};
use hmm_simulator::missrate::{fig4_capacities, l3_miss_rates};
use hmm_workloads::{npb_footprint_mb, WorkloadId};

fn grid_for(size: &str) -> GridConfig {
    match size {
        "--full" => GridConfig {
            scale: SimScale::full(),
            accesses: 20_000_000,
            warmup: 2_000_000,
            seed: 42,
        },
        "--bench" => GridConfig::bench(),
        _ => GridConfig::quick(),
    }
}

fn table1() {
    let rows: Vec<Vec<String>> = WorkloadId::npb_all()
        .iter()
        .map(|&id| cells([id.name().to_string(), format!("{}MB", npb_footprint_mb(id))]))
        .collect();
    print!(
        "{}",
        render_table("Table I: NPB 3.3 memory footprints", &["Workload", "Memory"], &rows)
    );
}

fn table2() {
    let l = LatencyConfig::default();
    let rows = vec![
        cells(["Memory controller processing".into(), format!("{}-cycle", l.mc_processing)]),
        cells([
            "Controller-to-core delay".into(),
            format!("{}-cycle each way", l.ctl_to_core_each_way),
        ]),
        cells(["Package pin delay".into(), format!("{}-cycle each way", l.package_pin_each_way)]),
        cells(["PCB wire delay".into(), format!("{}-cycle round-trip", l.pcb_wire_round_trip)]),
        cells([
            "Interposer pin delay".into(),
            format!("{}-cycle each way", l.interposer_pin_each_way),
        ]),
        cells([
            "Intra-package delay".into(),
            format!("{}-cycle round-trip", l.intra_package_round_trip),
        ]),
        cells(["DRAM core delay (analytic)".into(), format!("{}-cycle", l.dram_core)]),
        cells(["Queuing delay (analytic)".into(), format!("{}-cycle", l.queuing)]),
        cells(["On-package memory access".into(), format!("{}-cycle", l.on_package_analytic())]),
        cells(["Off-package memory access".into(), format!("{}-cycle", l.off_package_analytic())]),
        cells(["L4 cache hit".into(), format!("{}-cycle", l.l4_hit_analytic())]),
        cells(["L4 cache miss determination".into(), format!("{}-cycle", l.l4_miss_analytic())]),
    ];
    print!(
        "{}",
        render_table(
            "Table II: baseline configuration (reconstructed latencies)",
            &["Parameter", "Value"],
            &rows
        )
    );
}

fn table3() {
    let g = MemoryGeometry::paper_default();
    let rows = vec![
        cells(["Total memory capacity".into(), human_bytes(g.total_bytes)]),
        cells(["On-package memory capacity".into(), human_bytes(g.on_package_bytes)]),
        cells(["Macro page size".into(), "4KB to 4MB".to_string()]),
        cells(["Sub-block size".into(), human_bytes(g.sub_block_bytes())]),
        cells([
            "Workloads".into(),
            "FT.C, MG.C, SPEC2006 Mixture, pgbench, indexer, SPECjbb".to_string(),
        ]),
    ];
    print!(
        "{}",
        render_table("Table III: trace-simulation parameters", &["Parameter", "Value"], &rows)
    );
}

fn emit_json<T: hmm_telemetry::ToJson>(label: &str, rows: &[T]) {
    if !std::env::args().any(|a| a == "--json") {
        return;
    }
    for r in rows {
        println!("JSON {label} {}", r.to_json());
    }
}

fn table4(grid: &GridConfig) {
    let rows_data =
        effectiveness_table(grid, &WorkloadId::trace_study(), &[14, 16, 18, 20], &[1_000, 10_000]);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            cells([
                r.workload.clone(),
                f1(r.dram_core),
                f1(r.latency_without),
                f1(r.latency_with),
                human_bytes(r.best_page_bytes),
                r.best_interval.to_string(),
                pct(r.effectiveness_pct),
            ])
        })
        .collect();
    emit_json("table4", &rows_data);
    let avg = rows_data.iter().map(|r| r.effectiveness_pct).sum::<f64>() / rows_data.len() as f64;
    print!(
        "{}",
        render_table(
            "Table IV: effectiveness of controller-based data migration",
            &[
                "Workload",
                "DRAM core (cyc)",
                "Lat w/o mig",
                "Best lat w/ mig",
                "Best page",
                "Best interval",
                "Effectiveness",
            ],
            &rows
        )
    );
    println!("Average effectiveness: {avg:.1}%  (paper: 83%)");
}

fn fig4(grid: &GridConfig) {
    let caps = fig4_capacities();
    let mut rows = Vec::new();
    for id in WorkloadId::npb_all() {
        let rates = l3_miss_rates(id, &caps, grid.accesses.min(2_000_000), &grid.scale, grid.seed);
        let mut row = vec![id.name().to_string()];
        row.extend(rates.iter().map(|(_, r)| pct(r * 100.0)));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["Workload".into()];
    headers.extend(caps.iter().map(|c| human_bytes(*c)));
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print!("{}", render_table("Fig. 4: LLC miss rate vs. capacity", &hdr_refs, &rows));
}

fn fig5(grid: &GridConfig) {
    let gb = 1u64 << 30;
    let n = grid.accesses.min(1_000_000);
    let mut rows = Vec::new();
    for id in WorkloadId::npb_all() {
        let base = ipc_for(id, Fig5Option::Baseline, gb, n, &grid.scale, grid.seed);
        let mut row = vec![id.name().to_string(), f2(base.ipc)];
        for opt in [Fig5Option::L4Cache, Fig5Option::StaticMapping, Fig5Option::AllOnPackage] {
            let r = ipc_for(id, opt, gb, n, &grid.scale, grid.seed);
            row.push(format!("{:+.1}%", (r.ipc / base.ipc - 1.0) * 100.0));
        }
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Fig. 5: IPC improvement over baseline",
            &["Workload", "Base IPC", "L4 Cache 1GB", "On-Chip Mem 1GB", "All On-Chip"],
            &rows
        )
    );
}

fn fig10() {
    let rows: Vec<Vec<String>> = [4u64 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20]
        .iter()
        .map(|&p| {
            let o = hardware_bits(1 << 30, p, (4u64 << 10).min(p));
            cells([
                human_bytes(p),
                o.translation_table.to_string(),
                o.fill_bitmap.to_string(),
                o.lru_bitmap.to_string(),
                o.multi_queue.to_string(),
                o.total().to_string(),
            ])
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 10: hardware overhead (bits) to manage 1GB on-package memory",
            &["Page", "Table", "Fill bitmap", "LRU bitmap", "Multi-queue", "Total"],
            &rows
        )
    );
    println!("(paper: 9,228 bits at 4MB granularity)");
}

fn fig11(grid: &GridConfig, interval: u64) {
    let shifts: &[u32] = if grid.scale.divisor > 16 { &[14, 16, 18] } else { &PAGE_SHIFTS };
    let rows_data = fig11_grid(
        grid,
        interval,
        &WorkloadId::trace_study(),
        shifts,
        &[MigrationDesign::N, MigrationDesign::NMinusOne, MigrationDesign::LiveMigration],
    );
    emit_json("fig11", &rows_data);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            cells([
                r.workload.clone(),
                human_bytes(r.page_bytes),
                r.design.clone(),
                f1(r.mean_latency),
                f2(r.on_fraction),
            ])
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("Fig. 11: average memory latency (swap interval = {interval} accesses)"),
            &["Workload", "Page", "Design", "Avg latency (cyc)", "On-pkg frac"],
            &rows
        )
    );
}

fn fig12_14(grid: &GridConfig, interval: u64, fig: u32) {
    let shifts: &[u32] = if grid.scale.divisor > 16 { &[14, 16, 18] } else { &PAGE_SHIFTS };
    let rows_data = fig11_grid(
        grid,
        interval,
        &WorkloadId::trace_study(),
        shifts,
        &[MigrationDesign::LiveMigration],
    );
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            cells([
                r.workload.clone(),
                human_bytes(r.page_bytes),
                f1(r.mean_latency),
                f2(r.on_fraction),
            ])
        })
        .collect();
    print!(
        "{}",
        render_table(
            &format!("Fig. {fig}: live-migration average memory latency (interval = {interval})"),
            &["Workload", "Page", "Avg latency (cyc)", "On-pkg frac"],
            &rows
        )
    );
}

fn fig15(grid: &GridConfig) {
    let rows_data = fig15_capacity(
        grid,
        &WorkloadId::trace_study(),
        &[128 << 20, 256 << 20, 512 << 20],
        16,
        1_000,
    );
    emit_json("fig15", &rows_data);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            cells([
                r.workload.clone(),
                human_bytes(r.on_package_bytes),
                f1(r.dram_core),
                f1(r.with_migration),
                f1(r.without_migration),
            ])
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 15: sensitivity to on-package capacity",
            &["Workload", "On-pkg", "DRAM core", "With migration", "Without migration"],
            &rows
        )
    );
}

fn fig16(grid: &GridConfig) {
    let rows_data = fig16_power(grid, &WorkloadId::trace_study(), &[12, 14, 16], &INTERVALS);
    emit_json("fig16", &rows_data);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            cells([
                r.workload.clone(),
                human_bytes(r.page_bytes),
                r.interval.to_string(),
                f2(r.normalized_power),
            ])
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Fig. 16: memory power relative to off-package-DRAM-only",
            &["Workload", "Page", "Interval", "Normalized power"],
            &rows
        )
    );
}

/// Extension demo: the adaptive-granularity controller vs. fixed
/// granularities (not a paper figure; see DESIGN.md section 6b).
fn adaptive_demo(grid: &GridConfig) {
    use hmm_core::{AdaptiveConfig, AdaptiveController, ControllerConfig};
    use hmm_sim_base::addr::PhysAddr;
    use hmm_sim_base::config::MachineConfig;
    use hmm_simulator::driver::RunConfig;
    use hmm_simulator::experiments::run_cell;
    use hmm_workloads::workload;

    let mut rows = Vec::new();
    for w in [WorkloadId::Pgbench, WorkloadId::SpecJbb, WorkloadId::Mg] {
        // Fixed granularities via the normal driver.
        let mut fixed = Vec::new();
        for shift in [14u32, 16, 18] {
            let r = run_cell(
                grid,
                w,
                hmm_core::Mode::Dynamic(MigrationDesign::LiveMigration),
                shift,
                1_000,
            );
            fixed.push((shift, r.mean_latency()));
        }
        // The adaptive controller over the same stream.
        let rc = RunConfig {
            scale: grid.scale,
            page_shift: 16,
            ..RunConfig::paper(w, hmm_core::Mode::Dynamic(MigrationDesign::LiveMigration))
        };
        let base = ControllerConfig {
            machine: MachineConfig { geometry: rc.geometry(), ..Default::default() },
            swap_interval: 1_000,
            os_assisted: Some(false),
            ..ControllerConfig::paper_default(rc.mode)
        };
        let mut ctrl = AdaptiveController::new(
            AdaptiveConfig {
                candidate_shifts: vec![14, 16, 18],
                trial_accesses: grid.accesses / 8,
                reexplore_after: None,
            },
            base,
        );
        let wl = workload(w, &grid.scale);
        let mut total = 0u128;
        let mut n = 0u64;
        for rec in wl.iter(grid.seed).take(grid.accesses as usize) {
            ctrl.access(rec.tick, PhysAddr(rec.addr.0), rec.is_write);
            ctrl.advance(rec.tick);
            for c in ctrl.drain() {
                total += c.breakdown.total() as u128;
                n += 1;
            }
        }
        ctrl.flush();
        for c in ctrl.drain() {
            total += c.breakdown.total() as u128;
            n += 1;
        }
        let adaptive_mean = total as f64 / n.max(1) as f64;
        let committed = ctrl
            .committed_shift()
            .map(|s| human_bytes(1 << s))
            .unwrap_or_else(|| "exploring".into());
        let mut row = vec![wl.name.clone()];
        row.extend(fixed.iter().map(|(_, l)| f1(*l)));
        row.push(f1(adaptive_mean));
        row.push(committed);
        rows.push(row);
    }
    print!(
        "{}",
        render_table(
            "Extension: adaptive granularity vs. fixed (live migration, interval 1K)",
            &["Workload", "16KB fixed", "64KB fixed", "256KB fixed", "Adaptive", "Committed"],
            &rows
        )
    );
}

/// One-line diagnostic and exit 2 — invalid input must never panic.
/// (Same convention as `hmm-sim`, `hmm-bench`, and `hmm-serve`.)
fn fail(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what: Option<String> = None;
    let mut size = "--quick";
    for a in &args {
        match a.as_str() {
            s @ ("--quick" | "--bench" | "--full") => size = s,
            "--json" => {} // read by emit_json directly
            flag if flag.starts_with('-') => {
                fail(&format!("unknown flag '{flag}' (flags: --quick --bench --full --json)"))
            }
            exp => {
                if let Some(prev) = &what {
                    fail(&format!("more than one experiment named ('{prev}' and '{exp}')"));
                }
                what = Some(exp.to_string());
            }
        }
    }
    let what = what.as_deref().unwrap_or("all");
    const EXPERIMENTS: [&str; 15] = [
        "table1", "table2", "table3", "table4", "fig4", "fig5", "fig10", "fig11", "fig12", "fig13",
        "fig14", "fig15", "fig16", "adaptive", "all",
    ];
    if !EXPERIMENTS.contains(&what) {
        fail(&format!("unknown experiment '{what}' (experiments: {})", EXPERIMENTS.join(" ")));
    }
    let grid = grid_for(size);
    eprintln!(
        "[figures] {what} at scale 1/{} ({} accesses per run)",
        grid.scale.divisor, grid.accesses
    );

    match what {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(&grid),
        "fig4" => fig4(&grid),
        "fig5" => fig5(&grid),
        "fig10" => fig10(),
        "fig11" => {
            for iv in INTERVALS {
                fig11(&grid, iv);
            }
        }
        "fig12" => fig12_14(&grid, 1_000, 12),
        "fig13" => fig12_14(&grid, 10_000, 13),
        "fig14" => fig12_14(&grid, 100_000, 14),
        "fig15" => fig15(&grid),
        "fig16" => fig16(&grid),
        "adaptive" => adaptive_demo(&grid),
        "all" => {
            table1();
            table2();
            table3();
            fig10();
            fig4(&grid);
            fig5(&grid);
            fig11(&grid, 1_000);
            fig12_14(&grid, 1_000, 12);
            fig12_14(&grid, 10_000, 13);
            fig12_14(&grid, 100_000, 14);
            fig15(&grid);
            fig16(&grid);
            table4(&grid);
        }
        other => unreachable!("'{other}' was validated against EXPERIMENTS above"),
    }
}
