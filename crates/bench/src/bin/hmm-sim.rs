//! Command-line driver for one-off simulations.
//!
//! ```text
//! hmm-sim --workload pgbench --mode live --page 64K --interval 1000 \
//!         --accesses 400000 --scale 8 [--seed 42] [--on-package 512M] \
//!         [--scheme hetero|l4cache|pcm] [--policy hotcold|mlq] \
//!         [--faults stress] [--fault-seed 7] \
//!         [--trace-out t.hmt] [--trace-in <id|path>] [--trace-dir dir] \
//!         [--body-out body.json] \
//!         [--telemetry off|counters|full] [--chrome-out t.json] \
//!         [--metrics-out m.csv] [--events-out e.jsonl]
//!
//! modes: off | on | static | n | n-1 | live | adaptive
//! workloads: bt cg dc ep ft is lu mg sp ua spec2006 pgbench indexer specjbb
//! ```
//!
//! `--scheme` selects the placement scheme (default `hetero`, the
//! paper's controller; `l4cache` is the tags-in-DRAM L4 baseline and
//! composes only with `--mode off`; `pcm` swaps the off-package region
//! for a PCM profile and adds an endurance report line). `--policy`
//! selects the migration policy (`hotcold` default, `mlq` multi-queue
//! promotion). The default scheme's report is byte-identical to the
//! pre-scheme binary — new lines appear only for non-default schemes.
//!
//! Prints a latency/traffic report for the run; exit code 2 on bad usage
//! (invalid flags and invalid values get a one-line error, never a panic).
//! `--faults` arms the deterministic fault injector; the spec is a
//! comma-separated list (`stress`, `flip=2e-4`, `drop=1e-3`,
//! `stuck=on:0:5`, `throttle=off:300000:3000`, ... — see
//! `hmm_fault::FaultPlan::parse`), and the report gains a fault/recovery
//! section reconciled against the DRAM regions' ECC counters.
//!
//! `--trace-out` records the run's access stream as an `HMT1` binary
//! trace (uploadable via `POST /v1/traces` and replayable here), and
//! `--trace-in` replays one: a path is decoded directly, a 16-hex id is
//! resolved against the registry directory named by `--trace-dir` (an
//! `hmm-serve --store-dir`'s `traces/` subdirectory). A replay takes the
//! workload slot, so `--workload`/`--seed`/`--scale` are not needed.
//! `--body-out` writes the serving layer's rendered response body for
//! the run, byte-identical to what `POST /v1/simulate` returns for the
//! equivalent request — the hook the CI smoke test uses to `cmp` an
//! HTTP simulate-by-id against a local replay.
//!
//! With `--telemetry full` the run streams cross-layer events into a
//! recorder: `--chrome-out` writes a Chrome `trace_event` file for
//! `ui.perfetto.dev`, `--metrics-out` a per-epoch CSV, `--events-out` a
//! raw JSONL dump, and the report gains a counter summary that is
//! reconciled against the controller's own statistics.

use std::fs::File;
use std::io::BufWriter;

use hmm_bench::{f1, f2, human_bytes};
use hmm_core::{validate_scheme, MigrationPolicy, Mode, SchemeId};
use hmm_dram::SchedPolicy;
use hmm_fault::FaultPlan;
use hmm_power::{normalized_power, EnergyParams};
use hmm_sim_base::config::{parse_size, SimScale};
use hmm_sim_base::cycles::CpuClock;
use hmm_simulator::driver::{run_with_sink, RunConfig, TraceRef};
use hmm_simulator::wire::canonical_json;
use hmm_telemetry::{
    count_kind, epoch_rows, write_chrome_trace, write_epoch_csv, write_jsonl, EventKind, Recorder,
    RecorderConfig, TelemetryLevel,
};
use hmm_workloads::{replay, write_binary, WorkloadId};
use std::path::Path;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: hmm-sim --workload <name> --mode <mode> [--page <size>] \
         [--interval <accesses>] [--accesses <n>] [--warmup <n>] \
         [--scale <divisor>] [--seed <n>] [--on-package <size>] [--fcfs] \
         [--scheme hetero|l4cache|pcm] [--policy hotcold|mlq] \
         [--faults <spec>] [--fault-seed <n>] \
         [--trace-out <file>] [--trace-in <id|path>] [--trace-dir <dir>] \
         [--body-out <file>] \
         [--telemetry off|counters|full] [--chrome-out <file>] \
         [--metrics-out <file>] [--events-out <file>]\n\
         modes: off on static n n-1 live\n\
         workloads: bt cg dc ep ft is lu mg sp ua spec2006 pgbench indexer specjbb\n\
         fault specs: stress | flip/uflip/drop/timeout/rowcorrupt=<rate>, \
         stuck=<on|off>:<ch>:<bank>, throttle=<on|off>:<period>:<dur>, \
         retries/backoff/qthresh/spares/seed=<n> (comma-separated)"
    );
    std::process::exit(2)
}

/// One-line diagnostic and exit 2 — invalid input must never panic.
fn fail(msg: &str) -> ! {
    eprintln!("hmm-sim: {msg}");
    std::process::exit(2)
}

/// Resolve `--trace-in`: a 16-hex id against the `--trace-dir` registry,
/// anything else as a path to an `HMT1` file. Either way the trace ends
/// up registered for replay and identified by its content hash.
fn resolve_trace(spec: &str, dir: Option<&str>) -> TraceRef {
    if let Some(hash) = replay::parse_trace_id(spec) {
        let Some(dir) = dir else {
            fail("--trace-in with a trace id requires --trace-dir <registry dir>")
        };
        let (registry, _restored) = hmm_ingest::TraceRegistry::open(Path::new(dir))
            .unwrap_or_else(|e| fail(&format!("cannot open trace registry {dir}: {e}")));
        let summary = registry
            .get(hash)
            .unwrap_or_else(|| fail(&format!("unknown trace '{spec}' in registry {dir}")));
        TraceRef::from_summary(&summary)
    } else {
        let bytes = std::fs::read(spec)
            .unwrap_or_else(|e| fail(&format!("cannot read trace file {spec}: {e}")));
        let data =
            replay::decode(&bytes).unwrap_or_else(|e| fail(&format!("invalid trace {spec}: {e}")));
        let summary = data.summary;
        replay::register(Arc::new(data));
        TraceRef::from_summary(&summary)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = None;
    let mut mode = None;
    let mut page = 64u64 << 10;
    let mut interval = 1_000u64;
    let mut accesses = 400_000u64;
    let mut warmup = None;
    let mut scale = 8u64;
    let mut seed = 42u64;
    let mut on_package = 512u64 << 20;
    let mut policy = SchedPolicy::FrFcfs;
    let mut scheme = SchemeId::Hetero;
    let mut migration = MigrationPolicy::HotCold;
    let mut faults: Option<FaultPlan> = None;
    let mut fault_seed: Option<u64> = None;
    let mut telemetry: Option<TelemetryLevel> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_in: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut body_out: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut events_out: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val =
            || it.next().cloned().unwrap_or_else(|| fail(&format!("{a} requires a value")));
        let num = |flag: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|_| fail(&format!("invalid number for {flag}: {v}")))
        };
        let size = |flag: &str, v: String| {
            parse_size(&v).unwrap_or_else(|| fail(&format!("invalid size for {flag}: {v}")))
        };
        match a.as_str() {
            "--workload" | "-w" => {
                workload = Some(val().parse::<WorkloadId>().unwrap_or_else(|e| fail(&e)));
            }
            "--mode" | "-m" => {
                mode = Some(val().parse::<Mode>().unwrap_or_else(|e| fail(&e)));
            }
            "--page" | "-p" => page = size("--page", val()),
            "--interval" | "-i" => interval = num("--interval", val()),
            "--accesses" | "-n" => accesses = num("--accesses", val()),
            "--warmup" => warmup = Some(num("--warmup", val())),
            "--scale" | "-s" => scale = num("--scale", val()),
            "--seed" => seed = num("--seed", val()),
            "--on-package" => on_package = size("--on-package", val()),
            "--fcfs" => policy = SchedPolicy::Fcfs,
            "--scheme" => scheme = val().parse().unwrap_or_else(|e: String| fail(&e)),
            "--policy" => migration = val().parse().unwrap_or_else(|e: String| fail(&e)),
            "--faults" | "-f" => {
                let v = val();
                faults = Some(
                    FaultPlan::parse(&v)
                        .unwrap_or_else(|e| fail(&format!("invalid --faults: {e}"))),
                );
            }
            "--fault-seed" => fault_seed = Some(num("--fault-seed", val())),
            "--telemetry" => telemetry = Some(val().parse().unwrap_or_else(|e: String| fail(&e))),
            "--trace-out" => trace_out = Some(val()),
            "--trace-in" => trace_in = Some(val()),
            "--trace-dir" => trace_dir = Some(val()),
            "--body-out" => body_out = Some(val()),
            "--chrome-out" => chrome_out = Some(val()),
            "--metrics-out" => metrics_out = Some(val()),
            "--events-out" => events_out = Some(val()),
            "--help" | "-h" => usage(),
            other => {
                if let Some(level) = other.strip_prefix("--telemetry=") {
                    telemetry = Some(level.parse().unwrap_or_else(|e: String| fail(&e)));
                    continue;
                }
                if let Some(spec) = other.strip_prefix("--faults=") {
                    faults = Some(
                        FaultPlan::parse(spec)
                            .unwrap_or_else(|e| fail(&format!("invalid --faults: {e}"))),
                    );
                    continue;
                }
                if let Some(s) = other.strip_prefix("--fault-seed=") {
                    fault_seed = Some(num("--fault-seed", s.to_string()));
                    continue;
                }
                fail(&format!("unknown argument '{other}' (try --help)"))
            }
        }
    }
    match (&mut faults, fault_seed) {
        (Some(plan), Some(s)) => plan.seed = s,
        (None, Some(_)) => fail("--fault-seed requires --faults"),
        _ => {}
    }
    // Any export flag implies full capture: the exporters need the event
    // stream, not just counters. (`--trace-out` records the access
    // stream, not telemetry events, so it does not count.)
    let exports_requested = chrome_out.is_some() || metrics_out.is_some() || events_out.is_some();
    let telemetry = match telemetry {
        Some(level) => {
            if exports_requested && level != TelemetryLevel::Full {
                eprintln!("note: export flags require --telemetry full; upgrading");
                TelemetryLevel::Full
            } else {
                level
            }
        }
        None if exports_requested => TelemetryLevel::Full,
        None => TelemetryLevel::Off,
    };
    if trace_in.is_some() && trace_out.is_some() {
        fail("--trace-out cannot be combined with --trace-in (a replay would only copy the file)")
    }
    let trace = trace_in.as_deref().map(|spec| resolve_trace(spec, trace_dir.as_deref()));
    // A replayed trace takes the workload slot; the workload id is then
    // an inert placeholder (exactly as in the serving layer).
    let workload = match (&trace, workload) {
        (Some(_), _) => WorkloadId::Pgbench,
        (None, Some(w)) => w,
        (None, None) => usage(),
    };
    let Some(mode) = mode else { usage() };
    if let Err(e) = validate_scheme(scheme, mode, migration) {
        fail(&e)
    }
    if !page.is_power_of_two() {
        fail(&format!("--page must be a power of two, got {page}"))
    }
    if interval == 0 {
        fail("--interval must be at least 1")
    }
    if accesses == 0 {
        fail("--accesses must be at least 1")
    }

    let cfg = RunConfig {
        workload,
        mode,
        page_shift: page.trailing_zeros(),
        swap_interval: interval,
        on_package_bytes: on_package,
        scale: SimScale { divisor: scale.max(1) },
        accesses,
        warmup: warmup.unwrap_or(accesses / 5),
        seed,
        policy,
        faults,
        scheme,
        migration,
        trace,
        ..RunConfig::paper(workload, mode)
    };
    if let Err(e) = cfg.geometry().validate() {
        fail(&format!("invalid memory geometry: {e}"))
    }

    // Record before running: the trace is a pure function of the
    // workload generator, so a crash mid-simulation still leaves a
    // usable recording.
    if let Some(path) = &trace_out {
        let recs =
            hmm_workloads::workload(workload, &cfg.scale).records(cfg.seed, cfg.accesses as usize);
        let mut bytes = Vec::new();
        let written = write_binary(&mut bytes, recs)
            .unwrap_or_else(|e| fail(&format!("encoding trace: {e}")));
        let id = format!("{:016x}", hmm_sim_base::snap::snap_hash(&bytes));
        if let Err(e) = std::fs::write(path, &bytes) {
            eprintln!("error: writing trace to {path}: {e}");
            std::process::exit(1);
        }
        println!("trace recorded    : {path} ({written} records, id {id})");
    }

    let recorder = (telemetry != TelemetryLevel::Off).then(|| {
        Recorder::new(RecorderConfig {
            level: telemetry,
            // Sized to hold a whole run (demand + DRAM + migration events);
            // the recorder degrades to overwrite-oldest if this is exceeded.
            // One shard: this run is single-threaded, and a lone thread only
            // ever fills its own shard of the capacity.
            capacity: (accesses as usize).saturating_mul(8).clamp(1 << 20, 8 << 20),
            shards: 1,
        })
    });
    let r = match &recorder {
        Some(rec) => run_with_sink(&cfg, rec.clone()),
        None => run_with_sink(&cfg, hmm_telemetry::NullSink),
    };
    println!("workload          : {}", r.workload);
    println!("mode              : {mode:?}");
    // Only printed off the default path: hetero/hotcold output must stay
    // byte-identical to the pre-scheme report (the goldens pin it).
    if scheme != SchemeId::Hetero || migration != MigrationPolicy::HotCold {
        println!("scheme            : {} (migration policy {})", scheme.token(), migration.token());
    }
    println!(
        "geometry          : {} total, {} on-package, {} pages, {} sub-blocks",
        human_bytes(r.geometry.total_bytes),
        human_bytes(r.geometry.on_package_bytes),
        human_bytes(r.geometry.page_bytes()),
        human_bytes(r.geometry.sub_block_bytes()),
    );
    println!("accesses measured : {}", r.access.accesses());
    println!("mean latency      : {} cycles", f1(r.mean_latency()));
    println!(
        "  breakdown       : core {} + queue {} + ctrl {} + wires {}",
        f1(r.access.dram_core.mean()),
        f1(r.access.queuing.mean()),
        f1(r.access.controller.mean()),
        f1(r.access.interconnect.mean()),
    );
    println!("p99 latency       : {} cycles", r.access.histogram.quantile(0.99));
    println!("on-package share  : {}", f2(r.on_fraction()));
    if let Some(s) = r.swaps {
        println!(
            "migration         : {} swaps ({} sub-blocks copied; cases a/b/c/d = {:?})",
            s.completed, s.sub_blocks_copied, s.case_counts
        );
        if let Some(p) = normalized_power(&EnergyParams::default(), &r.traffic()) {
            println!("normalized power  : {}x of off-package-only", f2(p));
        }
    }
    if let Some(w) = &r.wear {
        println!(
            "endurance         : {} lines written, hottest bank {} ({} banks, imbalance {})",
            w.write_lines,
            w.max_bank_writes,
            w.banks,
            f2(w.imbalance()),
        );
    }
    if let Some(plan) = cfg.faults {
        let s = &r.controller;
        let (on, off) = (&r.on_region, &r.off_region);
        println!(
            "faults            : seed {:#x}{}",
            plan.seed,
            if plan.any_faults() { "" } else { " (all rates zero)" },
        );
        println!(
            "  ecc             : {} corrected, {} uncorrectable ({} on-package)",
            on.correctable_errors + off.correctable_errors,
            on.uncorrectable_errors + off.uncorrectable_errors,
            on.uncorrectable_errors,
        );
        println!(
            "  throttling      : {} stalls, {} cycles of issue delay",
            on.throttle_events + off.throttle_events,
            on.throttle_delay_cycles + off.throttle_delay_cycles,
        );
        println!(
            "  transfers       : {} dropped, {} timed out, {} ecc-failed, {} retries",
            s.transfers_dropped, s.transfers_timed_out, s.transfers_ecc_failed, s.transfer_retries,
        );
        if let Some(sw) = r.swaps {
            println!(
                "  recovery        : {} aborted swaps, {} sub-blocks rolled back, {} abandoned",
                sw.aborted, sw.rolled_back_sub_blocks, s.abandoned_sub_blocks,
            );
            println!(
                "  degradation     : {} slots quarantined, {} row corruptions repaired",
                s.slots_quarantined, s.row_corruptions,
            );
        }
    }

    // The serving layer's rendered body for this exact run: `render_run`
    // is a pure function of (canonical config, result), so this file is
    // byte-identical to what `POST /v1/simulate` returns for the
    // equivalent request — CI `cmp`s the two.
    if let Some(path) = &body_out {
        let body = hmm_serve::response::render_run(&canonical_json(&cfg), &r);
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("error: writing body to {path}: {e}");
            std::process::exit(1);
        }
        println!("body written      : {path}");
    }

    let Some(recorder) = recorder else { return };
    let counters = recorder.counters();
    println!(
        "telemetry         : level {}, {} events counted",
        telemetry.label(),
        counters.total()
    );
    println!(
        "  demand events   : {} (mean latency {} cyc, p99 bucket {} cyc)",
        counters.get(EventKind::Demand),
        f1(counters.demand_latency.mean()),
        counters.latency_hist.quantile(0.99),
    );
    println!(
        "  dram outcomes   : {} row hits, {} row misses, {} bank conflicts",
        counters.get(EventKind::RowHit),
        counters.get(EventKind::RowMiss),
        counters.get(EventKind::BankConflict),
    );
    // Counters are exact (never dropped), so they must agree with the
    // controller's own statistics — a cheap cross-layer sanity check.
    let (start, done) = (counters.get(EventKind::SwapStart), counters.get(EventKind::SwapComplete));
    let (s_trig, s_done) = r.swaps.map_or((0, 0), |s| (s.triggered, s.completed));
    let swaps_ok = start == s_trig && done == s_done;
    println!(
        "  swap events     : {start} started / {done} completed vs stats {s_trig}/{s_done} -> {}",
        if swaps_ok { "ok" } else { "MISMATCH" },
    );
    // The fault pipeline reconciles the same way: each injection site
    // reports exactly one FaultInjected, and each recovery action exactly
    // one event of its kind. (All-zero when no plan is armed.)
    let expected_faults = r.on_region.correctable_errors
        + r.on_region.uncorrectable_errors
        + r.on_region.throttle_events
        + r.off_region.correctable_errors
        + r.off_region.uncorrectable_errors
        + r.off_region.throttle_events
        + r.controller.transfers_dropped
        + r.controller.transfers_timed_out
        + r.controller.row_corruptions;
    let faults_ok = counters.get(EventKind::FaultInjected) == expected_faults
        && counters.get(EventKind::TransferRetried) == r.controller.transfer_retries
        && counters.get(EventKind::SwapAborted) == r.swaps.map_or(0, |s| s.aborted)
        && counters.get(EventKind::SlotQuarantined) == r.controller.slots_quarantined;
    if cfg.faults.is_some() {
        println!(
            "  fault events    : {} injected vs expected {expected_faults}, \
             {} retries / {} aborts / {} quarantines -> {}",
            counters.get(EventKind::FaultInjected),
            counters.get(EventKind::TransferRetried),
            counters.get(EventKind::SwapAborted),
            counters.get(EventKind::SlotQuarantined),
            if faults_ok { "ok" } else { "MISMATCH" },
        );
    }

    if telemetry == TelemetryLevel::Full {
        let events = recorder.events();
        if recorder.dropped() > 0 {
            eprintln!(
                "warning: event ring overflowed ({} events dropped); exports are truncated",
                recorder.dropped()
            );
        }
        let rows = epoch_rows(&events);
        let (ep_on, ep_off): (u64, u64) =
            rows.iter().fold((0, 0), |(a, b), r| (a + r.demand_on, b + r.demand_off));
        let epochs_ok =
            ep_on == r.controller.demand_on_lines && ep_off == r.controller.demand_off_lines;
        println!(
            "  epoch rows      : {} rows; demand lines on/off {ep_on}/{ep_off} vs stats {}/{} -> {}",
            rows.len(),
            r.controller.demand_on_lines,
            r.controller.demand_off_lines,
            if epochs_ok { "ok" } else { "MISMATCH" },
        );
        let demand_events = count_kind(&events, EventKind::Demand);
        println!("  ring            : {} events retained ({demand_events} demand)", events.len());

        let write = |path: &str, what: &str, f: &dyn Fn(BufWriter<File>) -> std::io::Result<()>| {
            match File::create(path).and_then(|file| f(BufWriter::new(file))) {
                Ok(()) => println!("  wrote {what}    : {path}"),
                Err(e) => {
                    eprintln!("error: writing {what} to {path}: {e}");
                    std::process::exit(1);
                }
            }
        };
        if let Some(path) = &chrome_out {
            let mhz = CpuClock::default().cpu_mhz;
            write(path, "chrome", &|w| write_chrome_trace(w, &events, mhz));
        }
        if let Some(path) = &metrics_out {
            write(path, "csv   ", &|w| write_epoch_csv(w, &rows));
        }
        if let Some(path) = &events_out {
            write(path, "jsonl ", &|w| write_jsonl(w, &events));
        }
        if !(swaps_ok && epochs_ok && faults_ok) && recorder.dropped() == 0 {
            eprintln!("error: telemetry counters disagree with controller statistics");
            std::process::exit(1);
        }
    }
}
