//! Command-line driver for one-off simulations.
//!
//! ```text
//! hmm-sim --workload pgbench --mode live --page 64K --interval 1000 \
//!         --accesses 400000 --scale 8 [--seed 42] [--on-package 512M]
//!
//! modes: off | on | static | n | n-1 | live | adaptive
//! workloads: bt cg dc ep ft is lu mg sp ua spec2006 pgbench indexer specjbb
//! ```
//!
//! Prints a latency/traffic report for the run; exit code 2 on bad usage.

use hmm_bench::{f1, f2, human_bytes};
use hmm_core::{MigrationDesign, Mode};
use hmm_dram::SchedPolicy;
use hmm_power::{normalized_power, EnergyParams};
use hmm_sim_base::config::SimScale;
use hmm_simulator::driver::{run, RunConfig};
use hmm_workloads::WorkloadId;

fn parse_workload(s: &str) -> Option<WorkloadId> {
    use WorkloadId::*;
    Some(match s.to_ascii_lowercase().as_str() {
        "bt" | "bt.c" => Bt,
        "cg" | "cg.c" => Cg,
        "dc" | "dc.b" => Dc,
        "ep" | "ep.c" => Ep,
        "ft" | "ft.c" => Ft,
        "is" | "is.c" => Is,
        "lu" | "lu.c" => Lu,
        "mg" | "mg.c" => Mg,
        "sp" | "sp.c" => Sp,
        "ua" | "ua.c" => Ua,
        "spec2006" | "spec" => Spec2006Mix,
        "pgbench" => Pgbench,
        "indexer" => Indexer,
        "specjbb" | "jbb" => SpecJbb,
        _ => return None,
    })
}

fn parse_mode(s: &str) -> Option<Mode> {
    Some(match s.to_ascii_lowercase().as_str() {
        "off" | "baseline" => Mode::AllOffPackage,
        "on" | "ideal" => Mode::AllOnPackage,
        "static" => Mode::Static,
        "n" => Mode::Dynamic(MigrationDesign::N),
        "n-1" | "n1" => Mode::Dynamic(MigrationDesign::NMinusOne),
        "live" => Mode::Dynamic(MigrationDesign::LiveMigration),
        _ => return None,
    })
}

/// Parse sizes like `64K`, `4M`, `1G`, `512M`, plain bytes.
fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|v| v * mult)
}

fn usage() -> ! {
    eprintln!(
        "usage: hmm-sim --workload <name> --mode <mode> [--page <size>] \
         [--interval <accesses>] [--accesses <n>] [--warmup <n>] \
         [--scale <divisor>] [--seed <n>] [--on-package <size>] [--fcfs]\n\
         modes: off on static n n-1 live\n\
         workloads: bt cg dc ep ft is lu mg sp ua spec2006 pgbench indexer specjbb"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = None;
    let mut mode = None;
    let mut page = 64u64 << 10;
    let mut interval = 1_000u64;
    let mut accesses = 400_000u64;
    let mut warmup = None;
    let mut scale = 8u64;
    let mut seed = 42u64;
    let mut on_package = 512u64 << 20;
    let mut policy = SchedPolicy::FrFcfs;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" | "-w" => workload = parse_workload(&val()),
            "--mode" | "-m" => mode = parse_mode(&val()),
            "--page" | "-p" => page = parse_size(&val()).unwrap_or_else(|| usage()),
            "--interval" | "-i" => interval = val().parse().unwrap_or_else(|_| usage()),
            "--accesses" | "-n" => accesses = val().parse().unwrap_or_else(|_| usage()),
            "--warmup" => warmup = val().parse().ok(),
            "--scale" | "-s" => scale = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--on-package" => on_package = parse_size(&val()).unwrap_or_else(|| usage()),
            "--fcfs" => policy = SchedPolicy::Fcfs,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other}");
                usage()
            }
        }
    }
    let (Some(workload), Some(mode)) = (workload, mode) else { usage() };
    if !page.is_power_of_two() {
        eprintln!("--page must be a power of two");
        usage()
    }

    let cfg = RunConfig {
        workload,
        mode,
        page_shift: page.trailing_zeros(),
        swap_interval: interval,
        on_package_bytes: on_package,
        scale: SimScale { divisor: scale.max(1) },
        accesses,
        warmup: warmup.unwrap_or(accesses / 5),
        seed,
        policy,
        ..RunConfig::paper(workload, mode)
    };

    let r = run(&cfg);
    println!("workload          : {}", r.workload);
    println!("mode              : {mode:?}");
    println!(
        "geometry          : {} total, {} on-package, {} pages, {} sub-blocks",
        human_bytes(r.geometry.total_bytes),
        human_bytes(r.geometry.on_package_bytes),
        human_bytes(r.geometry.page_bytes()),
        human_bytes(r.geometry.sub_block_bytes()),
    );
    println!("accesses measured : {}", r.access.accesses());
    println!("mean latency      : {} cycles", f1(r.mean_latency()));
    println!(
        "  breakdown       : core {} + queue {} + ctrl {} + wires {}",
        f1(r.access.dram_core.mean()),
        f1(r.access.queuing.mean()),
        f1(r.access.controller.mean()),
        f1(r.access.interconnect.mean()),
    );
    println!("p99 latency       : {} cycles", r.access.histogram.quantile(0.99));
    println!("on-package share  : {}", f2(r.on_fraction()));
    if let Some(s) = r.swaps {
        println!(
            "migration         : {} swaps ({} sub-blocks copied; cases a/b/c/d = {:?})",
            s.completed, s.sub_blocks_copied, s.case_counts
        );
        if let Some(p) = normalized_power(&EnergyParams::default(), &r.traffic()) {
            println!("normalized power  : {}x of off-package-only", f2(p));
        }
    }
}
