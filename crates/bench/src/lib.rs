//! Shared plumbing for the figure-regeneration harness and the
//! microbenches: text-table formatting, experiment presets, and a small
//! Criterion-compatible benchmark harness ([`harness`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod perf;
pub mod sweep;

/// The workspace JSON reader now lives beside the writer in
/// `hmm_telemetry`; re-exported here so `hmm_bench::jsonin` paths keep
/// working.
pub use hmm_telemetry::jsonin;

use std::fmt::Display;

/// Render a simple aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let head: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
        .collect();
    out.push_str(&head.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Format a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Human-readable byte size (KB/MB/GB powers of two).
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{}GB", b >> 30)
    } else if b >= 1 << 20 {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Join any display values into row cells.
pub fn cells<T: Display>(vals: impl IntoIterator<Item = T>) -> Vec<String> {
    vals.into_iter().map(|v| v.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["xx".into(), "y".into()], vec!["1".into(), "22222".into()]],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("xx"));
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(4 << 10), "4KB");
        assert_eq!(human_bytes(512 << 20), "512MB");
        assert_eq!(human_bytes(4 << 30), "4GB");
    }
}
