//! Figure rendering from sweep documents, behind `hmm-bench sweep`.
//!
//! Two entry points, one contract:
//!
//! - [`figures_from_spec`] runs a grid spec in-process — the exact
//!   pipeline a sweep takes through the serving layer (expand → request
//!   parse/dedup → grid run → serve renderer → aggregate) — and returns
//!   the `hmm-sweep-figures-v1` document. Because every stage is
//!   byte-deterministic, the document is byte-identical to what
//!   `GET /v1/sweeps/<id>` reports for the same spec, whether the sweep
//!   ran on one server or across a coordinator's peers.
//! - [`render_figures`] turns any figures document — fetched over HTTP
//!   or produced locally — into the human-readable tables the paper's
//!   Figs. 11–16 are read from.

use std::collections::HashSet;

use hmm_serve::request::{parse_body, Limits};
use hmm_serve::response::render_run;
use hmm_simulator::experiments::run_grid;
use hmm_sweep::aggregate::{figures_doc, FIGURES_SCHEMA};
use hmm_sweep::expand;

use crate::jsonin::{self, Json};
use crate::{cells, f1, render_table};

/// Expand a grid spec, run every unique cell in-process, and aggregate
/// the rendered results into the `hmm-sweep-figures-v1` document.
pub fn figures_from_spec(spec_text: &str, max_cells: usize) -> Result<String, String> {
    let bodies = expand(spec_text, max_cells)?;
    let limits = Limits::default();
    let mut sims = Vec::new();
    let mut seen = HashSet::new();
    for (i, body) in bodies.iter().enumerate() {
        let sim = parse_body(body, &limits).map_err(|e| format!("cell {i}: {e}"))?;
        if seen.insert(sim.key) {
            sims.push(sim);
        }
    }
    let cfgs: Vec<_> = sims.iter().map(|s| s.cfg).collect();
    let (results, _totals) = run_grid(&cfgs);
    let rendered: Vec<String> =
        sims.iter().zip(&results).map(|(s, r)| render_run(&s.canonical, r)).collect();
    figures_doc(&rendered)
}

fn need_f64(v: &Json, name: &str) -> Result<f64, String> {
    v.get(name).and_then(Json::as_f64).ok_or_else(|| format!("figure row missing '{name}'"))
}

fn need_str<'a>(v: &'a Json, name: &str) -> Result<&'a str, String> {
    v.get(name).and_then(Json::as_str).ok_or_else(|| format!("figure row missing '{name}'"))
}

/// Render a figures document as text tables: one row per cell plus the
/// merged controller/swap totals the document reconciles against.
pub fn render_figures(doc_text: &str) -> Result<String, String> {
    let doc = jsonin::parse(doc_text).map_err(|e| format!("invalid figures document: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(FIGURES_SCHEMA) => {}
        Some(other) => return Err(format!("unsupported schema '{other}' (want {FIGURES_SCHEMA})")),
        None => return Err("document lacks a schema field".into()),
    }
    let rows =
        doc.get("figure_rows").and_then(Json::as_arr).ok_or("document lacks 'figure_rows'")?;
    let mut table = Vec::with_capacity(rows.len());
    for row in rows {
        let power = match row.get("normalized_power") {
            Some(Json::Num(p)) => format!("{p:.3}"),
            _ => "-".into(),
        };
        // Documents aggregated before the scheme axis existed lack the
        // field; they were all implicitly the paper's controller.
        let scheme = row.get("scheme").and_then(Json::as_str).unwrap_or("hetero");
        table.push(cells([
            need_str(row, "workload")?.to_string(),
            need_str(row, "mode")?.to_string(),
            scheme.to_string(),
            format!("{:.0}", need_f64(row, "page_bytes")?),
            format!("{:.0}", need_f64(row, "interval")?),
            format!("{:.0}", need_f64(row, "seed")?),
            f1(need_f64(row, "mean_latency_cycles")?),
            format!("{:.0}", need_f64(row, "p99_latency_cycles")?),
            format!("{:.1}", need_f64(row, "on_package_fraction")? * 100.0),
            power,
        ]));
    }
    let mut out = render_table(
        "sweep figures",
        &[
            "workload", "mode", "scheme", "page B", "interval", "seed", "mean lat", "p99 lat",
            "on%", "power",
        ],
        &table,
    );

    let totals = doc.get("totals").ok_or("document lacks 'totals'")?;
    let ctrl = totals.get("controller").ok_or("totals lack 'controller'")?;
    let swaps = totals.get("swaps").ok_or("totals lack 'swaps'")?;
    let t = |v: &Json, n: &str| need_f64(v, n).map(|f| format!("{f:.0}"));
    out.push_str(&render_table(
        "sweep totals",
        &[
            "cells",
            "demand on",
            "demand off",
            "migr on",
            "migr off",
            "stalls",
            "epochs",
            "swaps done",
            "blocks copied",
            "aborted",
        ],
        &[cells([
            t(&doc, "cells")?,
            t(ctrl, "demand_on_lines")?,
            t(ctrl, "demand_off_lines")?,
            t(ctrl, "migration_on_lines")?,
            t(ctrl, "migration_off_lines")?,
            t(ctrl, "stall_cycles")?,
            t(ctrl, "epochs")?,
            t(swaps, "completed")?,
            t(swaps, "sub_blocks_copied")?,
            t(swaps, "aborted")?,
        ])],
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{"workload":"pgbench","mode":["static","live"],
        "accesses":3000,"scale":64,"seed":7}"#;

    #[test]
    fn spec_runs_deterministically_and_renders() {
        let a = figures_from_spec(SPEC, 16).unwrap();
        let b = figures_from_spec(SPEC, 16).unwrap();
        assert_eq!(a, b, "in-process figures must be byte-deterministic");
        let doc = jsonin::parse(&a).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(FIGURES_SCHEMA));
        assert_eq!(doc.get("cells").unwrap().as_f64(), Some(2.0));

        let text = render_figures(&a).unwrap();
        assert!(text.contains("== sweep figures =="), "{text}");
        assert!(text.contains("== sweep totals =="), "{text}");
        assert!(text.contains("pgbench"), "{text}");
        assert!(text.contains("live"), "{text}");
    }

    #[test]
    fn duplicate_cells_coalesce() {
        let spec = r#"{"workload":"pgbench","mode":"static","accesses":3000,
            "scale":64,"page":["64K",65536]}"#;
        let doc = jsonin::parse(&figures_from_spec(spec, 16).unwrap()).unwrap();
        assert_eq!(doc.get("cells").unwrap().as_f64(), Some(1.0), "two spellings, one cell");
    }

    #[test]
    fn scheme_column_renders_in_figure_tables() {
        let spec = r#"{"workload":"pgbench","mode":"live","accesses":3000,
            "scale":64,"seed":7,"scheme":["hetero","pcm"]}"#;
        let doc_text = figures_from_spec(spec, 16).unwrap();
        let doc = jsonin::parse(&doc_text).unwrap();
        let rows = doc.get("figure_rows").unwrap().as_arr().unwrap();
        let schemes: Vec<&str> =
            rows.iter().map(|r| r.get("scheme").unwrap().as_str().unwrap()).collect();
        assert_eq!(schemes, ["hetero", "pcm"], "one row per scheme, in cell order");

        let text = render_figures(&doc_text).unwrap();
        let header = text.lines().find(|l| l.contains("workload")).unwrap();
        assert!(header.contains("scheme"), "missing scheme column: {header}");
        assert!(text.lines().any(|l| l.contains("pcm")), "{text}");
        // A pre-scheme document (rows without the field) still renders,
        // defaulting to the paper's controller.
        let legacy =
            doc_text.replace(r#","scheme":"pcm""#, "").replace(r#","scheme":"hetero""#, "");
        let text = render_figures(&legacy).unwrap();
        assert!(!text.contains("pcm"), "{text}");
        assert!(text.lines().filter(|l| l.contains("hetero")).count() >= 2, "{text}");
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(figures_from_spec("[", 16).unwrap_err().contains("invalid JSON"));
        assert!(figures_from_spec(r#"{"workload":"warehouse"}"#, 16)
            .unwrap_err()
            .contains("cell 0"));
        assert!(render_figures("{").unwrap_err().contains("invalid figures document"));
        assert!(render_figures("{}").unwrap_err().contains("schema"));
        assert!(render_figures(r#"{"schema":"other-v9"}"#).unwrap_err().contains("other-v9"));
    }
}
