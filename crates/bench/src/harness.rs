//! A minimal Criterion-compatible micro-benchmark harness.
//!
//! The workspace builds in offline containers where the real `criterion`
//! crate (and its dependency tree) cannot be fetched, so this module
//! reimplements the small slice of its API the benches use: groups,
//! parameterised benchmark ids, element throughput, `b.iter(..)` sampling
//! and the `criterion_group!`/`criterion_main!` macros. Measurements are
//! wall-clock samples around whole `iter` closures; results print as
//! `name  median ± spread  (throughput)` lines, one per benchmark.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque value barrier: stops the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared work per iteration, used to report a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements.
    Elements(u64),
}

/// A `group/function/parameter` benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A two-part id: `function/parameter`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self { name: format!("{function}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { name: parameter.to_string() }
    }
}

/// Timing loop handle passed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once as warm-up, then time `sample_size` further calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let spread = samples[samples.len() - 1].saturating_sub(samples[0]);
    let rate = throughput.map(|Throughput::Elements(n)| {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            n as f64 / secs
        } else {
            f64::INFINITY
        }
    });
    match rate {
        Some(r) => println!("{name:<40} {median:>12.2?} ± {spread:.2?}  ({r:.0} elem/s)"),
        None => println!("{name:<40} {median:>12.2?} ± {spread:.2?}"),
    }
}

/// Top-level harness state; one per process, shared by all groups.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: default_sample_size(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { sample_size: default_sample_size(), samples: Vec::new() };
        f(&mut b);
        report(name, &mut b.samples, None);
    }
}

/// Honour the standard quick-run switch so `cargo bench` smoke tests stay
/// fast in CI (`cargo bench -- --quick` style filtering is not supported;
/// set `BENCH_SAMPLES` instead).
fn default_sample_size() -> usize {
    std::env::var("BENCH_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}

/// A set of benchmarks reported under a shared name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Samples per benchmark (Criterion's knob; here the exact count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` against one prepared `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.prefix, id.name), &mut b.samples, self.throughput);
        self
    }

    /// Benchmark a closure with no prepared input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut b);
        report(&format!("{}/{name}", self.prefix), &mut b.samples, self.throughput);
        self
    }

    /// Close the group (printing is incremental, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

/// Bundle benchmark functions into one runner, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher { sample_size: 4, samples: Vec::new() };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(b.samples.len(), 4);
        assert_eq!(runs, 5, "one warm-up plus four samples");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("stream", "on_package").name, "stream/on_package");
        assert_eq!(BenchmarkId::from_parameter(128).name, "128");
    }
}
