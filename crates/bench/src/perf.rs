//! The pinned performance suite behind `hmm-bench perf`.
//!
//! Measures end-to-end simulator throughput (simulated accesses per
//! wall-clock second) over a fixed grid of scenarios — the three migration
//! designs × demand-dominated workloads at fixed seeds — plus the serve
//! path (parse → admit → render over loopback HTTP, as requests per
//! second), with warmup plus median-of-k sampling, and emits a
//! machine-readable `BENCH_*.json` whose schema is stable so CI can gate
//! on regressions against a committed baseline. Every scenario also carries a *sim-stat digest*: a hash over
//! the run's exact simulated counters, used to assert bit-determinism
//! across sequential/parallel execution and across binaries (a perf PR
//! must not change simulated behaviour).

use std::time::{Duration, Instant};

use hmm_core::{MigrationDesign, Mode};
use hmm_serve::client::request as http_request;
use hmm_serve::{Server, ServerConfig};
use hmm_simulator::driver::{run, RunConfig, RunResult};
use hmm_telemetry::json::JsonObject;
use hmm_workloads::WorkloadId;

use crate::jsonin::{self, Json};

/// Schema identifier written into every report; bump on breaking change.
pub const SCHEMA: &str = "hmm-bench-perf-v1";

/// Default regression threshold for `--baseline` mode: fail when median
/// throughput drops more than this fraction below the baseline.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// One cell of the pinned suite.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable identifier, `<design>/<workload>` (baseline rows are matched
    /// by this string).
    pub id: &'static str,
    /// Migration design under test.
    pub design: MigrationDesign,
    /// Workload driving the run.
    pub workload: WorkloadId,
}

/// The pinned grid: three designs × three demand-dominated workloads.
/// Order, ids and seeds are frozen — CI compares rows by `id`.
pub fn suite() -> Vec<Scenario> {
    use MigrationDesign::*;
    use WorkloadId::*;
    vec![
        Scenario { id: "n/pgbench", design: N, workload: Pgbench },
        Scenario { id: "n/specjbb", design: N, workload: SpecJbb },
        Scenario { id: "n/mg", design: N, workload: Mg },
        Scenario { id: "n1/pgbench", design: NMinusOne, workload: Pgbench },
        Scenario { id: "n1/specjbb", design: NMinusOne, workload: SpecJbb },
        Scenario { id: "n1/mg", design: NMinusOne, workload: Mg },
        Scenario { id: "live/pgbench", design: LiveMigration, workload: Pgbench },
        Scenario { id: "live/specjbb", design: LiveMigration, workload: SpecJbb },
        Scenario { id: "live/mg", design: LiveMigration, workload: Mg },
    ]
}

/// The fixed run configuration for one scenario. `quick` shortens the
/// trace for CI smoke runs; everything else (scale, seed, geometry,
/// epoch length) is pinned so digests are comparable across binaries.
pub fn run_config(s: &Scenario, quick: bool) -> RunConfig {
    let mut cfg = RunConfig::quick(s.workload, Mode::Dynamic(s.design));
    cfg.seed = 42;
    cfg.accesses = if quick { 150_000 } else { 500_000 };
    cfg.warmup = 20_000;
    cfg
}

/// FNV-1a over a sequence of words — stable across platforms and runs.
#[derive(Debug, Clone, Copy)]
pub struct Digest(u64);

impl Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Digest(Self::OFFSET)
    }

    fn push(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn push_u128(&mut self, v: u128) {
        self.push(v as u64);
        self.push((v >> 64) as u64);
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Wrap a raw digest value (for rendering a stored digest).
    pub fn from_value(v: u64) -> Self {
        Digest(v)
    }

    /// Canonical hex rendering used in the JSON schema.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// Hash the exact simulated counters of one run. Every input is an
/// integer total — no floats — so equal digests mean bit-identical
/// simulated behaviour, and the digest doubles as the determinism check
/// for sequential-vs-parallel sweeps and for cross-binary A/B runs.
pub fn digest_of(r: &RunResult) -> Digest {
    let mut d = Digest::new();
    let a = &r.access;
    d.push(a.reads);
    d.push(a.writes);
    d.push(a.on_package_hits);
    d.push(a.latency.count());
    d.push_u128(a.latency.total());
    d.push_u128(a.dram_core.total());
    d.push_u128(a.queuing.total());
    d.push_u128(a.controller.total());
    d.push_u128(a.interconnect.total());
    d.push(a.histogram.count());
    d.push(a.histogram.max());
    let c = &r.controller;
    for v in [
        c.demand_on_lines,
        c.demand_off_lines,
        c.migration_on_lines,
        c.migration_off_lines,
        c.stall_cycles,
        c.epochs,
        c.rejected_triggers,
        c.transfer_retries,
        c.transfers_dropped,
        c.transfers_timed_out,
        c.transfers_ecc_failed,
        c.abandoned_sub_blocks,
        c.row_corruptions,
        c.slots_quarantined,
    ] {
        d.push(v);
    }
    if let Some(s) = &r.swaps {
        for v in [
            s.triggered,
            s.completed,
            s.sub_blocks_copied,
            s.aborted,
            s.rolled_back_sub_blocks,
            s.quarantine_drains,
        ] {
            d.push(v);
        }
    }
    d
}

/// Run one scenario once (no timing) and return its sim-stat digest.
pub fn scenario_digest(s: &Scenario, quick: bool) -> u64 {
    digest_of(&run(&run_config(s, quick))).value()
}

/// Measured result of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Stable scenario id.
    pub id: String,
    /// Simulated accesses per run (the workload length).
    pub accesses: u64,
    /// Wall-clock nanoseconds of each timed sample, in sample order.
    pub wall_ns: Vec<u64>,
    /// Median wall-clock nanoseconds.
    pub wall_ns_p50: u64,
    /// Fastest timed sample in nanoseconds. Recorded alongside the median
    /// so a report shows how noisy the samples were, not just the spread
    /// ratio — an A/B reader can tell "stable but slower" from "one
    /// outlier dragged the spread".
    pub wall_ns_min: u64,
    /// Slowest timed sample in nanoseconds.
    pub wall_ns_max: u64,
    /// Noise measure: (max - min) / p50 over the timed samples.
    pub spread: f64,
    /// Simulated accesses per wall-clock second at the median sample.
    pub accesses_per_sec: f64,
    /// Sim-stat digest (identical across all samples, asserted).
    pub digest: u64,
    /// Mean simulated end-to-end latency, for the human-readable table.
    pub mean_latency: f64,
    /// Fraction of accesses served on-package.
    pub on_fraction: f64,
}

fn median(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Measure one scenario: one untimed warmup run, then `samples` timed
/// runs. Panics if any sample's digest disagrees with the first — a
/// nondeterministic simulator makes every number here meaningless.
pub fn measure_scenario(s: &Scenario, quick: bool, samples: usize) -> ScenarioReport {
    let cfg = run_config(s, quick);
    let warm = run(&cfg);
    let expect = digest_of(&warm).value();
    let mut wall_ns = Vec::with_capacity(samples);
    let mut last = warm;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        let r = run(&cfg);
        let dt = t0.elapsed();
        assert_eq!(
            digest_of(&r).value(),
            expect,
            "scenario {} is not deterministic across samples",
            s.id
        );
        wall_ns.push(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        last = r;
    }
    finish_report(s.id, cfg.accesses, wall_ns, expect, last.mean_latency(), last.on_fraction())
}

/// Assemble a [`ScenarioReport`] from raw timed samples: sort, take the
/// median, derive spread and per-second throughput over `units` (simulated
/// accesses for simulator scenarios, requests for the serve path).
fn finish_report(
    id: &str,
    units: u64,
    wall_ns: Vec<u64>,
    digest: u64,
    mean_latency: f64,
    on_fraction: f64,
) -> ScenarioReport {
    let mut sorted = wall_ns.clone();
    sorted.sort_unstable();
    let p50 = median(&sorted);
    let (min, max) = match sorted.as_slice() {
        [] => (0, 0),
        s => (s[0], s[s.len() - 1]),
    };
    let spread = if p50 > 0 { (max - min) as f64 / p50 as f64 } else { 0.0 };
    let aps = if p50 > 0 { units as f64 * 1e9 / p50 as f64 } else { 0.0 };
    ScenarioReport {
        id: id.to_string(),
        accesses: units,
        wall_ns,
        wall_ns_p50: p50,
        wall_ns_min: min,
        wall_ns_max: max,
        spread,
        accesses_per_sec: aps,
        digest,
        mean_latency,
        on_fraction,
    }
}

/// Stable id of the serve-path scenario: the row's `accesses` and
/// `accesses_per_sec` count HTTP *requests*, not simulated accesses.
pub const SERVE_SCENARIO_ID: &str = "serve/loopback";

/// The fixed request body driven through the serve path. Small enough
/// that the single warmup simulation is cheap; after it the result sits
/// in the deterministic cache, so every timed request measures only
/// parse → admit (cache hit) → render → loopback TCP.
const SERVE_BODY: &str =
    r#"{"workload":"pgbench","mode":"static","accesses":20000,"scale":64,"seed":42}"#;

/// Requests per timed sample on the serve path.
fn serve_requests(quick: bool) -> u64 {
    if quick {
        300
    } else {
        1000
    }
}

/// Measure the serve path: boot a real server on loopback, warm the
/// result cache with one simulation, then time batches of identical
/// requests. The digest is FNV over the response body — the server must
/// answer byte-identically on every request, which is the same
/// determinism bar the simulator scenarios clear with their counters.
pub fn measure_serve_path(quick: bool, samples: usize) -> ScenarioReport {
    let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
    let server = Server::start(cfg).expect("bind loopback bench server");
    let addr = server.local_addr();
    let timeout = Duration::from_secs(30);
    let first = http_request(addr, "POST", "/v1/simulate", SERVE_BODY, timeout).expect("warmup");
    assert_eq!(first.status, 200, "warmup request failed: {}", first.body);
    let expect = {
        let mut d = Digest::new();
        d.push_bytes(first.body.as_bytes());
        d.value()
    };
    let requests = serve_requests(quick);
    let mut wall_ns = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        for _ in 0..requests {
            let r = http_request(addr, "POST", "/v1/simulate", SERVE_BODY, timeout)
                .expect("serve-path request");
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(r.body, first.body, "serve path must answer byte-identically");
        }
        wall_ns.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    server.shutdown();
    // The headline metrics come from the cached simulation itself, so the
    // serve row stays meaningful in the human-readable table.
    let (mean_latency, on_fraction) = jsonin::parse(&first.body)
        .ok()
        .and_then(|doc| {
            let a = doc.get("access")?;
            Some((
                a.get("mean_latency_cycles").and_then(Json::as_f64)?,
                a.get("on_package_fraction").and_then(Json::as_f64)?,
            ))
        })
        .unwrap_or((0.0, 0.0));
    finish_report(SERVE_SCENARIO_ID, requests, wall_ns, expect, mean_latency, on_fraction)
}

/// Measure the whole pinned suite sequentially (timings are only
/// meaningful without co-running scenarios competing for cores), then
/// the serve-path scenario — every row lands in the same report and is
/// gated by the same committed baseline.
pub fn measure_suite(quick: bool, samples: usize) -> Vec<ScenarioReport> {
    let mut rows: Vec<ScenarioReport> =
        suite().iter().map(|s| measure_scenario(s, quick, samples)).collect();
    rows.push(measure_serve_path(quick, samples));
    rows
}

/// Validate a `--scenario` selection against the pinned suite (plus the
/// serve-path row) and return it in canonical suite order, deduplicated.
/// Unknown ids are an error listing what exists — a typo must not
/// silently benchmark nothing.
pub fn filter_ids(wanted: &[String]) -> Result<Vec<String>, String> {
    let known: Vec<String> = suite()
        .iter()
        .map(|s| s.id.to_string())
        .chain(std::iter::once(SERVE_SCENARIO_ID.to_string()))
        .collect();
    if let Some(bad) = wanted.iter().find(|w| !known.contains(w)) {
        return Err(format!("unknown scenario '{bad}'; valid ids: {}", known.join(", ")));
    }
    Ok(known.into_iter().filter(|k| wanted.contains(k)).collect())
}

/// [`measure_suite`] restricted to the given scenario ids (already
/// validated by [`filter_ids`]). A filtered report is for local iteration
/// — it still round-trips through [`report_json`]/[`compare`], which
/// match rows by id and simply skip absent ones on the new side only when
/// the caller gates with a matching filtered baseline.
pub fn measure_suite_filtered(quick: bool, samples: usize, ids: &[String]) -> Vec<ScenarioReport> {
    let mut rows: Vec<ScenarioReport> = suite()
        .iter()
        .filter(|s| ids.iter().any(|i| i == s.id))
        .map(|s| measure_scenario(s, quick, samples))
        .collect();
    if ids.iter().any(|i| i == SERVE_SCENARIO_ID) {
        rows.push(measure_serve_path(quick, samples));
    }
    rows
}

/// Render the full report as the stable `BENCH_*.json` document.
pub fn report_json(quick: bool, samples: usize, rows: &[ScenarioReport]) -> String {
    let scenarios: Vec<String> = rows
        .iter()
        .map(|r| {
            JsonObject::new()
                .str("id", &r.id)
                .u64("accesses", r.accesses)
                .u64("wall_ns_p50", r.wall_ns_p50)
                .u64("wall_ns_min", r.wall_ns_min)
                .u64("wall_ns_max", r.wall_ns_max)
                .f64("spread", r.spread)
                .f64("accesses_per_sec", r.accesses_per_sec)
                .str("digest", &Digest(r.digest).hex())
                .f64("mean_latency_cycles", r.mean_latency)
                .f64("on_fraction", r.on_fraction)
                .finish()
        })
        .collect();
    JsonObject::new()
        .str("schema", SCHEMA)
        .u64("bench_pr", 7)
        .bool("quick", quick)
        .u64("samples", samples as u64)
        .raw("scenarios", &format!("[{}]", scenarios.join(",")))
        .finish()
}

/// Outcome of a baseline comparison.
#[derive(Debug)]
pub struct Comparison {
    /// One human-readable line per compared scenario.
    pub lines: Vec<String>,
    /// Scenario ids whose throughput regressed beyond the threshold (or
    /// that vanished from the new report).
    pub regressions: Vec<String>,
}

/// Compare a fresh report against a baseline document. Rows are matched
/// by scenario id; comparison is on `accesses_per_sec` (throughput), so a
/// `--quick` run can be gated against a full-length baseline — fixed
/// per-run costs make quick runs *slower* per access, never faster, which
/// keeps the gate conservative in that direction only when thresholds are
/// chosen per mode (CI passes an explicit `--threshold`). Digests are
/// reported but never gated on: legitimate behaviour changes move them.
pub fn compare(new_json: &str, baseline_json: &str, threshold: f64) -> Result<Comparison, String> {
    let new = jsonin::parse(new_json).map_err(|e| format!("new report: {e}"))?;
    let base = jsonin::parse(baseline_json).map_err(|e| format!("baseline: {e}"))?;
    for (doc, what) in [(&new, "new report"), (&base, "baseline")] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("{what}: unsupported schema '{other}'")),
            None => return Err(format!("{what}: missing schema field")),
        }
    }
    let rows = |doc: &Json| -> Result<Vec<(String, f64, String)>, String> {
        doc.get("scenarios")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing scenarios array".to_string())?
            .iter()
            .map(|r| {
                let id = r
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "scenario without id".to_string())?;
                let aps = r
                    .get("accesses_per_sec")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("scenario {id}: missing accesses_per_sec"))?;
                let digest = r.get("digest").and_then(Json::as_str).unwrap_or_default().to_string();
                Ok((id.to_string(), aps, digest))
            })
            .collect()
    };
    let new_rows = rows(&new)?;
    let base_rows = rows(&base)?;
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (id, base_aps, base_digest) in &base_rows {
        let Some((_, new_aps, new_digest)) = new_rows.iter().find(|(n, _, _)| n == id) else {
            lines.push(format!("{id}: MISSING from new report"));
            regressions.push(id.clone());
            continue;
        };
        let ratio = if *base_aps > 0.0 { new_aps / base_aps } else { f64::INFINITY };
        let digest_note = if base_digest == new_digest { "" } else { " [digest changed]" };
        if ratio < 1.0 - threshold {
            lines.push(format!(
                "{id}: REGRESSION {:.2}x baseline throughput ({:.0} vs {:.0} acc/s){digest_note}",
                ratio, new_aps, base_aps
            ));
            regressions.push(id.clone());
        } else {
            lines.push(format!(
                "{id}: ok {:.2}x baseline throughput ({:.0} vs {:.0} acc/s){digest_note}",
                ratio, new_aps, base_aps
            ));
        }
    }
    Ok(Comparison { lines, regressions })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_pinned() {
        let s = suite();
        assert_eq!(s.len(), 9);
        let ids: Vec<&str> = s.iter().map(|x| x.id).collect();
        assert_eq!(
            ids,
            [
                "n/pgbench",
                "n/specjbb",
                "n/mg",
                "n1/pgbench",
                "n1/specjbb",
                "n1/mg",
                "live/pgbench",
                "live/specjbb",
                "live/mg"
            ]
        );
        // Ids must be unique: baseline matching is by id.
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let s = suite()[0];
        let a = scenario_digest(&s, true);
        let b = scenario_digest(&s, true);
        assert_eq!(a, b, "same scenario must digest identically");
        let other = Scenario { id: "x", ..suite()[1] };
        assert_ne!(a, scenario_digest(&other, true), "different workloads must differ");
    }

    #[test]
    fn report_json_parses_back() {
        let rows = vec![ScenarioReport {
            id: "live/pgbench".into(),
            accesses: 1000,
            wall_ns: vec![10, 20, 30],
            wall_ns_p50: 20,
            wall_ns_min: 10,
            wall_ns_max: 30,
            spread: 1.0,
            accesses_per_sec: 5.0e7,
            digest: 0xdead_beef,
            mean_latency: 123.4,
            on_fraction: 0.9,
        }];
        let text = report_json(false, 3, &rows);
        let doc = jsonin::parse(&text).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some(SCHEMA));
        let sc = doc.get("scenarios").unwrap().as_arr().unwrap();
        assert_eq!(sc[0].get("id").unwrap().as_str(), Some("live/pgbench"));
        assert_eq!(sc[0].get("digest").unwrap().as_str(), Some("00000000deadbeef"));
        assert_eq!(sc[0].get("accesses_per_sec").unwrap().as_f64(), Some(5.0e7));
        assert_eq!(sc[0].get("wall_ns_min").unwrap().as_f64(), Some(10.0));
        assert_eq!(sc[0].get("wall_ns_max").unwrap().as_f64(), Some(30.0));
    }

    #[test]
    fn finish_report_records_sample_extremes() {
        let r = finish_report("x", 100, vec![30, 10, 20], 1, 1.0, 0.5);
        assert_eq!(r.wall_ns_p50, 20);
        assert_eq!(r.wall_ns_min, 10);
        assert_eq!(r.wall_ns_max, 30);
        assert_eq!(r.spread, 1.0);
    }

    #[test]
    fn filtered_suite_selects_and_rejects() {
        let rows = filter_ids(&["n/mg".into(), SERVE_SCENARIO_ID.into()]).unwrap();
        assert_eq!(rows, vec!["n/mg".to_string(), SERVE_SCENARIO_ID.to_string()]);
        let err = filter_ids(&["n/mg".into(), "nope/bogus".into()]).unwrap_err();
        assert!(err.contains("nope/bogus"), "{err}");
        assert!(err.contains("n/pgbench"), "error must list valid ids: {err}");
    }

    #[test]
    fn compare_flags_regression_and_missing() {
        let mk = |id: &str, aps: f64| ScenarioReport {
            id: id.into(),
            accesses: 100,
            wall_ns: vec![1],
            wall_ns_p50: 1,
            wall_ns_min: 1,
            wall_ns_max: 1,
            spread: 0.0,
            accesses_per_sec: aps,
            digest: 1,
            mean_latency: 1.0,
            on_fraction: 0.5,
        };
        let base = report_json(false, 1, &[mk("a", 100.0), mk("b", 100.0), mk("c", 100.0)]);
        // 'a' fine, 'b' regressed beyond 25%, 'c' missing.
        let new = report_json(false, 1, &[mk("a", 90.0), mk("b", 60.0)]);
        let cmp = compare(&new, &base, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(cmp.regressions, vec!["b".to_string(), "c".to_string()]);
        assert_eq!(cmp.lines.len(), 3);
        // A faster run is never a regression.
        let fast = report_json(false, 1, &[mk("a", 500.0), mk("b", 500.0), mk("c", 500.0)]);
        assert!(compare(&fast, &base, DEFAULT_THRESHOLD).unwrap().regressions.is_empty());
    }

    #[test]
    fn compare_rejects_bad_documents() {
        assert!(compare("{", "{}", 0.25).is_err());
        assert!(compare("{}", "{}", 0.25).is_err(), "missing schema must be rejected");
        let wrong = r#"{"schema":"other-v9","scenarios":[]}"#;
        let ok = r#"{"schema":"hmm-bench-perf-v1","scenarios":[]}"#;
        assert!(compare(wrong, ok, 0.25).is_err());
        assert!(compare(ok, ok, 0.25).unwrap().regressions.is_empty());
    }

    #[test]
    fn serve_path_smoke() {
        let r = measure_serve_path(true, 1);
        assert_eq!(r.id, SERVE_SCENARIO_ID);
        assert_eq!(r.accesses, 300, "quick mode drives 300 requests per sample");
        assert!(r.wall_ns_p50 > 0);
        assert!(r.accesses_per_sec > 0.0, "requests/sec must be positive");
        assert!(r.mean_latency > 0.0, "headline metrics parsed from the cached body");
        assert!(r.on_fraction > 0.0);
    }

    #[test]
    fn measure_scenario_quick_smoke() {
        // One real timed measurement end-to-end (shortest cell).
        let s = suite()[0];
        let r = measure_scenario(&s, true, 1);
        assert_eq!(r.wall_ns.len(), 1);
        assert!(r.wall_ns_p50 > 0);
        assert!(r.accesses_per_sec > 0.0);
        assert!(r.mean_latency > 0.0);
    }
}
