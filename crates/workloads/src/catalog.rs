//! The named workloads of the paper.
//!
//! Two groups:
//!
//! * **NPB 3.3** (Table I) — the ten NAS Parallel Benchmarks at CLASS C
//!   (CLASS B for DC), used in the Section II full-system comparison
//!   (Figs. 4 and 5). Footprints are the values printed in Table I.
//! * **Trace study** (Table III) — FT.C, MG.C, the SPEC2006 mixture
//!   (gcc + mcf + perl + zeusmp), pgbench, the Nutch indexer and
//!   SPECjbb2005, all with footprints larger than 2 GB, used to evaluate
//!   migration (Figs. 11-16, Table IV).
//!
//! Every workload is a pattern mixture tuned to the program's published
//! locality class; see DESIGN.md for the substitution argument. Footprints
//! can be scaled down (`SimScale`) for fast CI runs — the on-/off-package
//! capacity ratio is scaled identically by the experiment drivers, so the
//! shapes are preserved.

use crate::pattern::Pattern;
use crate::trace::{Stream, Workload};
use hmm_sim_base::config::SimScale;

/// Identifier for every workload in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// NPB BT (block tri-diagonal solver), CLASS C.
    Bt,
    /// NPB CG (conjugate gradient), CLASS C.
    Cg,
    /// NPB DC (data cube), CLASS B.
    Dc,
    /// NPB EP (embarrassingly parallel), CLASS C.
    Ep,
    /// NPB FT (3-D FFT), CLASS C.
    Ft,
    /// NPB IS (integer sort), CLASS C.
    Is,
    /// NPB LU (LU solver), CLASS C.
    Lu,
    /// NPB MG (multigrid), CLASS C.
    Mg,
    /// NPB SP (scalar penta-diagonal solver), CLASS C.
    Sp,
    /// NPB UA (unstructured adaptive), CLASS C.
    Ua,
    /// Four SPEC2006 programs (gcc, mcf, perl, zeusmp) run together.
    Spec2006Mix,
    /// TPC-B-like PostgreSQL 8.3 with pgbench, scaling factor 100.
    Pgbench,
    /// Nutch 0.9.1 indexer over HDFS.
    Indexer,
    /// Four copies of SPECjbb2005, 16 warehouses each.
    SpecJbb,
}

impl WorkloadId {
    /// The ten NPB kernels in Table I order.
    pub fn npb_all() -> [WorkloadId; 10] {
        use WorkloadId::*;
        [Bt, Cg, Dc, Ep, Ft, Is, Lu, Mg, Sp, Ua]
    }

    /// The six trace-study workloads in Table III / Table IV order.
    pub fn trace_study() -> [WorkloadId; 6] {
        use WorkloadId::*;
        [Ft, Mg, Pgbench, Indexer, SpecJbb, Spec2006Mix]
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        use WorkloadId::*;
        match self {
            Bt => "BT.C",
            Cg => "CG.C",
            Dc => "DC.B",
            Ep => "EP.C",
            Ft => "FT.C",
            Is => "IS.C",
            Lu => "LU.C",
            Mg => "MG.C",
            Sp => "SP.C",
            Ua => "UA.C",
            Spec2006Mix => "SPEC2006 Mixture",
            Pgbench => "pgbench",
            Indexer => "indexer",
            SpecJbb => "SPECjbb",
        }
    }

    /// Canonical lowercase token, round-trippable through [`FromStr`](std::str::FromStr).
    /// This is the spelling used by CLI flags and the `hmm-serve` wire
    /// format, so cache keys and reports agree on one name per workload.
    pub fn token(&self) -> &'static str {
        use WorkloadId::*;
        match self {
            Bt => "bt",
            Cg => "cg",
            Dc => "dc",
            Ep => "ep",
            Ft => "ft",
            Is => "is",
            Lu => "lu",
            Mg => "mg",
            Sp => "sp",
            Ua => "ua",
            Spec2006Mix => "spec2006",
            Pgbench => "pgbench",
            Indexer => "indexer",
            SpecJbb => "specjbb",
        }
    }
}

impl std::str::FromStr for WorkloadId {
    type Err = String;

    /// Accepts the canonical token, the paper spelling (`ft.c`), and the
    /// historical CLI aliases (`spec`, `jbb`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use WorkloadId::*;
        Ok(match s.to_ascii_lowercase().as_str() {
            "bt" | "bt.c" => Bt,
            "cg" | "cg.c" => Cg,
            "dc" | "dc.b" => Dc,
            "ep" | "ep.c" => Ep,
            "ft" | "ft.c" => Ft,
            "is" | "is.c" => Is,
            "lu" | "lu.c" => Lu,
            "mg" | "mg.c" => Mg,
            "sp" | "sp.c" => Sp,
            "ua" | "ua.c" => Ua,
            "spec2006" | "spec" | "spec2006 mixture" => Spec2006Mix,
            "pgbench" => Pgbench,
            "indexer" => Indexer,
            "specjbb" | "jbb" => SpecJbb,
            other => return Err(format!("unknown workload '{other}'")),
        })
    }
}

/// NPB memory footprints in MB as printed in Table I (BT.C and CG.C digits
/// are uncertain in the available scan; the printed values are kept because
/// they are self-consistent with the paper's "7 of 10 fit in 1 GB" claim).
pub fn npb_footprint_mb(id: WorkloadId) -> u64 {
    use WorkloadId::*;
    match id {
        Bt => 76,
        Cg => 92,
        Dc => 5876,
        Ep => 16,
        Ft => 5147,
        Is => 164,
        Lu => 615,
        Mg => 3426,
        Sp => 758,
        Ua => 51,
        Spec2006Mix => 3100,
        Pgbench => 2560,
        Indexer => 3072,
        SpecJbb => 3072,
    }
}

/// 4 KB-aligned sub-region: `(numerator/denominator)` of the footprint
/// starting at fraction `at_num/at_den`.
fn part(fp: u64, at_num: u64, at_den: u64, num: u64, den: u64) -> (u64, u64) {
    let align = |v: u64| v & !4095;
    let start = align(fp / at_den * at_num);
    let len = align(fp / den * num).max(4096);
    let len = len.min(fp.saturating_sub(start)).max(4096);
    (start, len)
}

/// Scaled footprint of `id` in bytes, without building the workload.
///
/// Exactly the value [`workload`] puts in [`Workload::footprint_bytes`].
/// Geometry resolution (and the serving layer's request validation) only
/// needs this number, and building the full pattern mixture costs
/// milliseconds — the Zipf CDF tables alone do one `powf` per page rank —
/// so callers that never generate records must use this instead.
pub fn footprint_bytes(id: WorkloadId, scale: &SimScale) -> u64 {
    scale.bytes(npb_footprint_mb(id) << 20).max(64 << 10)
}

/// Build one of the paper's workloads, scaled by `scale`.
///
/// The returned [`Workload`] is a specification: call
/// [`Workload::iter`] with a seed to obtain records.
pub fn workload(id: WorkloadId, scale: &SimScale) -> Workload {
    let fp = footprint_bytes(id, scale);
    let w = match id {
        WorkloadId::Bt | WorkloadId::Sp | WorkloadId::Lu => {
            // Structured-grid solvers: repeated array sweeps with a small,
            // hot working set of solver coefficients (the Fig. 4 knee sits
            // in the tens of megabytes for these kernels).
            let (hs, hl) = part(fp, 1, 4, 1, 32);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.55, Pattern::sweep(0, fp, 64, 0.3)),
                        (0.45, Pattern::zipf_pages(hs, hl, 1.05, 0.3)),
                    ],
                })
                .collect();
            Workload {
                name: id.name().into(),
                footprint_bytes: fp,
                mean_gap: match id {
                    WorkloadId::Bt => 30,
                    WorkloadId::Sp => 26,
                    _ => 24,
                },
                streams,
            }
        }
        WorkloadId::Cg => {
            // Sparse mat-vec: gather (chase) over the matrix plus a hot
            // vector region.
            let (cs, cl) = part(fp, 1, 4, 3, 4);
            let (vs, vl) = part(fp, 0, 1, 1, 8);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.5, Pattern::chase(cs, cl, 0.1)),
                        (0.3, Pattern::sweep(0, fp, 64, 0.2)),
                        (0.2, Pattern::zipf_pages(vs, vl, 1.0, 0.4)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 16, streams }
        }
        WorkloadId::Dc => {
            // Data cube: sort/aggregation phases re-read their working
            // chunk a few times (pass-structured), over a huge space with
            // a moderately hot quarter. The hot quarter sits in the upper
            // half of the space — cube aggregates are built late — so
            // static low-address mapping gets no free ride.
            let (hs, hl) = part(fp, 5, 8, 1, 16);
            let window = (fp / 512).max(64 << 10);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.10, Pattern::uniform(0, fp, 0.4)),
                        (0.35, Pattern::windowed_sweep(0, fp, window, 8, 64, 0.4)),
                        (0.55, Pattern::zipf_pages(hs, hl, 1.1, 0.4)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 22, streams }
        }
        WorkloadId::Ep => {
            // Embarrassingly parallel: tiny, cache-friendly footprint and
            // low memory intensity.
            let (hs, hl) = part(fp, 0, 1, 1, 2);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.9, Pattern::zipf_pages(hs, hl, 1.0, 0.3)),
                        (0.1, Pattern::sweep(0, fp, 64, 0.2)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 200, streams }
        }
        WorkloadId::Ft => {
            // 3-D FFT: each dimension pass works a chunk of the array
            // several times (butterfly stages) before moving on, plus
            // large-stride transpose walks within the chunk; a small
            // twiddle-factor table is the only persistently hot data. The
            // chunked reuse is DRAM-cache-capturable, but at page level
            // the working window keeps moving, which is why FT is the
            // least migration-friendly workload in the study.
            let (ts, tl) = part(fp, 0, 1, 1, 64);
            // ~80 MB per thread at full scale: bigger than the L3 (so
            // the SRAM hierarchy cannot hold a pass), and the four
            // threads' windows together use a large share of the
            // on-package capacity (so both the DRAM cache and migration
            // can capture the pass-to-pass butterfly reuse — but only
            // while a window lasts; the windows keep rotating through the
            // whole multi-gigabyte array, which is what makes FT the
            // study's hardest workload).
            let window = (fp / 256).max(64 << 10);
            // Re-used wave-number/plan data: an eighth of the array, hot
            // across passes (scattered, so neither a static mapping nor
            // luck captures it).
            let (ws, wl) = part(fp, 4, 8, 1, 8);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.50, Pattern::windowed_sweep(0, fp, window, 6, 64, 0.4)),
                        (0.40, Pattern::zipf_pages(ws, wl, 0.9, 0.3)),
                        (0.10, Pattern::zipf_pages(ts, tl, 1.0, 0.1)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 12, streams }
        }
        WorkloadId::Is => {
            // Integer sort: bucket scatter writes plus sequential key reads.
            let (bs, bl) = part(fp, 1, 8, 3, 4);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.5, Pattern::uniform(bs, bl, 0.7)),
                        (0.5, Pattern::sweep(0, fp, 64, 0.1)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 14, streams }
        }
        WorkloadId::Mg => {
            // Multigrid V-cycle: the finest grid dominates the footprint;
            // coarser grids shrink by 8x each level and are revisited often
            // enough to be worth keeping on-package.
            let l0 = part(fp, 0, 1, 7, 10);
            let l1 = part(fp, 7, 10, 7, 80);
            let l2 = part(fp, 8, 10, 7, 640);
            let l3 = part(fp, 9, 10, 7, 5120);
            let (hs, hl) = part(fp, 19, 20, 1, 50);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        // The finest grid streams; the coarser grids (~1/10
                        // of the footprint together) take the majority of
                        // the accesses because every V-cycle runs several
                        // relaxation sweeps on them. The zipf component
                        // models that relaxation reuse concentrating on the
                        // coarse-grid region.
                        (0.25, Pattern::sweep(l0.0, l0.1, 64, 0.35)),
                        (0.20, Pattern::v_cycle(vec![l1, l2, l3], 64, 0.35)),
                        (
                            0.40,
                            Pattern::zipf_pages(
                                l1.0,
                                (l1.1 + l2.1 + l3.1).min(fp - l1.0),
                                0.45,
                                0.35,
                            ),
                        ),
                        (0.15, Pattern::zipf_pages(hs, hl, 1.0, 0.3)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 12, streams }
        }
        WorkloadId::Ua => {
            // Unstructured adaptive: irregular but with a hot mesh kernel.
            let (hs, hl) = part(fp, 0, 1, 1, 3);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.4, Pattern::uniform(0, fp, 0.3)),
                        (0.6, Pattern::zipf_pages(hs, hl, 0.95, 0.3)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 28, streams }
        }
        WorkloadId::Spec2006Mix => {
            // Four single-threaded programs, one per core, in disjoint
            // address regions. Each has a small, very hot working set —
            // together they fit comfortably on-package, which is why the
            // paper measures 99.1% effectiveness here.
            let gcc = part(fp, 0, 16, 3, 16); // ~580 MB region
            let mcf = part(fp, 3, 16, 9, 16); // ~1.7 GB region
            let perl = part(fp, 12, 16, 1, 16);
            let zeus = part(fp, 13, 16, 3, 16);
            let streams = vec![
                Stream {
                    cpu: 0,
                    mix: vec![
                        (0.95, Pattern::zipf_pages(gcc.0, gcc.1, 1.3, 0.3)),
                        (0.05, Pattern::sweep(gcc.0, gcc.1, 64, 0.2)),
                    ],
                },
                Stream {
                    cpu: 1,
                    mix: vec![
                        (0.95, Pattern::zipf_pages(mcf.0, mcf.1, 1.4, 0.2)),
                        (0.05, Pattern::uniform(mcf.0, mcf.1, 0.2)),
                    ],
                },
                Stream { cpu: 2, mix: vec![(1.0, Pattern::zipf_pages(perl.0, perl.1, 1.2, 0.35))] },
                Stream {
                    cpu: 3,
                    mix: vec![
                        (0.8, Pattern::zipf_pages(zeus.0, zeus.1, 1.25, 0.35)),
                        (0.2, Pattern::sweep(zeus.0, zeus.1 / 8, 64, 0.35)),
                    ],
                },
            ];
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 12, streams }
        }
        WorkloadId::Pgbench => {
            // TPC-B: zipfian row access over the tables, an append-only WAL,
            // and occasional scans.
            let data = part(fp, 0, 16, 14, 16);
            let wal = part(fp, 31, 32, 1, 32);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.87, Pattern::zipf_pages(data.0, data.1, 1.3, 0.35)),
                        (0.10, Pattern::sweep(wal.0, wal.1, 64, 1.0)),
                        (0.03, Pattern::uniform(data.0, data.1, 0.1)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 14, streams }
        }
        WorkloadId::Indexer => {
            // Nutch indexer: stream documents in, update hot hash/index
            // structures.
            let docs = part(fp, 2, 5, 3, 5);
            let index = part(fp, 0, 1, 2, 5);
            let streams = (0..4)
                .map(|cpu| Stream {
                    cpu,
                    mix: vec![
                        (0.25, Pattern::sweep(docs.0, docs.1, 64, 0.05)),
                        (0.68, Pattern::zipf_pages(index.0, index.1, 1.2, 0.5)),
                        (0.07, Pattern::uniform(docs.0, docs.1, 0.1)),
                    ],
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 13, streams }
        }
        WorkloadId::SpecJbb => {
            // Four JVM copies, 16 warehouses each: per-copy zipf with
            // moderate skew plus GC-like sweeps.
            let streams = (0..4u8)
                .map(|cpu| {
                    let region = part(fp, cpu as u64, 4, 1, 4);
                    Stream {
                        cpu,
                        mix: vec![
                            (0.88, Pattern::zipf_pages(region.0, region.1, 1.0, 0.4)),
                            (0.12, Pattern::uniform(region.0, region.1, 0.3)),
                        ],
                    }
                })
                .collect();
            Workload { name: id.name().into(), footprint_bytes: fp, mean_gap: 14, streams }
        }
    };
    // Parallel workers start their sweeps at staggered positions, as
    // OpenMP-partitioned codes do; this also makes finite measurement
    // windows representative of the long-run address distribution.
    let mut w = w;
    let n = w.streams.len().max(1) as f64;
    for (i, stream) in w.streams.iter_mut().enumerate() {
        let frac = i as f64 / n;
        for (_, pat) in &mut stream.mix {
            let staggered = pat.clone().with_phase(frac);
            *pat = staggered;
        }
    }
    debug_assert!(w.validate().is_ok(), "{:?}: {:?}", id, w.validate());
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn table1_footprints_are_the_printed_values() {
        use WorkloadId::*;
        let expect = [
            (Bt, 76),
            (Cg, 92),
            (Dc, 5876),
            (Ep, 16),
            (Ft, 5147),
            (Is, 164),
            (Lu, 615),
            (Mg, 3426),
            (Sp, 758),
            (Ua, 51),
        ];
        for (id, mb) in expect {
            assert_eq!(npb_footprint_mb(id), mb, "{id:?}");
        }
    }

    #[test]
    fn tokens_round_trip_through_from_str() {
        for id in WorkloadId::npb_all().into_iter().chain(WorkloadId::trace_study()) {
            assert_eq!(id.token().parse::<WorkloadId>(), Ok(id), "{id:?}");
            assert_eq!(id.name().parse::<WorkloadId>(), Ok(id), "paper spelling for {id:?}");
        }
        assert!("warehouse".parse::<WorkloadId>().is_err());
    }

    #[test]
    fn seven_of_ten_npb_fit_in_1gb() {
        let fits = WorkloadId::npb_all().iter().filter(|&&id| npb_footprint_mb(id) < 1024).count();
        assert_eq!(fits, 7, "the paper states 7 of 10 fit in 1 GB");
    }

    #[test]
    fn trace_study_footprints_exceed_2gb() {
        for id in WorkloadId::trace_study() {
            assert!(npb_footprint_mb(id) > 2048, "{id:?} must exceed 2 GB per Section IV");
        }
    }

    #[test]
    fn all_workloads_validate_at_all_scales() {
        for id in WorkloadId::npb_all().into_iter().chain(WorkloadId::trace_study()) {
            for div in [1u64, 16, 64, 256] {
                let w = workload(id, &SimScale { divisor: div });
                w.validate().unwrap_or_else(|e| panic!("{id:?} at /{div}: {e}"));
            }
        }
    }

    #[test]
    fn cheap_footprint_matches_built_workload() {
        for id in WorkloadId::npb_all().into_iter().chain(WorkloadId::trace_study()) {
            for div in [1u64, 16, 64, 256] {
                let scale = SimScale { divisor: div };
                assert_eq!(
                    footprint_bytes(id, &scale),
                    workload(id, &scale).footprint_bytes,
                    "{id:?} at /{div}"
                );
            }
        }
    }

    #[test]
    fn all_workloads_generate_records() {
        for id in WorkloadId::trace_study() {
            let w = workload(id, &SimScale::test_default());
            let recs = w.records(1, 5_000);
            assert_eq!(recs.len(), 5_000);
            assert!(recs.iter().all(|r| r.addr.0 < w.footprint_bytes));
        }
    }

    /// Predictive hot-page coverage: take the hottest pages of one access
    /// window (budgeted at 1/8 of the footprint, the 512 MB : 4 GB ratio of
    /// Table III) and measure what fraction of the *next* window they
    /// serve. This is precisely what hottest-coldest migration can exploit
    /// — pages migrated because they were hot must stay hot — so the
    /// ordering across workloads predicts the Table IV effectiveness
    /// ordering.
    fn predictive_coverage(id: WorkloadId) -> f64 {
        let w = workload(id, &SimScale { divisor: 64 });
        let page = 4096u64;
        let win = 100_000usize;
        let budget = (w.footprint_bytes / 8 / page) as usize;
        let mut it = w.iter(11);
        let mut prev_hot: Option<std::collections::HashSet<u64>> = None;
        let mut scores = Vec::new();
        for _ in 0..5 {
            let mut heat: HashMap<u64, u64> = HashMap::new();
            let mut covered = 0u64;
            for _ in 0..win {
                let r = it.next().unwrap();
                let p = r.addr.0 / page;
                *heat.entry(p).or_insert(0) += 1;
                if let Some(h) = &prev_hot {
                    if h.contains(&p) {
                        covered += 1;
                    }
                }
            }
            if prev_hot.is_some() {
                scores.push(covered as f64 / win as f64);
            }
            let mut v: Vec<(u64, u64)> = heat.into_iter().collect();
            v.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
            prev_hot = Some(v.into_iter().take(budget).map(|(p, _)| p).collect());
        }
        scores.iter().sum::<f64>() / scores.len() as f64
    }

    #[test]
    fn locality_ordering_predicts_table4() {
        let spec = predictive_coverage(WorkloadId::Spec2006Mix);
        let pg = predictive_coverage(WorkloadId::Pgbench);
        let mg = predictive_coverage(WorkloadId::Mg);
        let jbb = predictive_coverage(WorkloadId::SpecJbb);
        // Paper Table IV: SPEC2006 99.1% > pgbench 92.2% > (indexer 86.1%,
        // MG 84.3%) > SPECjbb 72.2% > FT 69.1%.
        //
        // FT is deliberately excluded from this static proxy: its FFT
        // passes dwell on one window far longer than the measurement
        // window, so hot-page prediction looks near-perfect here even
        // though the windows rotate (and defeat migration) at the full
        // trace horizon. FT's true migration behaviour is asserted by the
        // end-to-end simulations instead.
        assert!(spec > 0.75, "SPEC2006 mixture is the most concentratable, got {spec:.2}");
        assert!(spec > pg, "SPEC ({spec:.2}) must beat pgbench ({pg:.2})");
        assert!(pg > mg, "pgbench ({pg:.2}) must beat MG ({mg:.2})");
        // MG and SPECjbb are near each other by this proxy (84.3% vs
        // 72.2% in the paper); require MG not to fall meaningfully below.
        assert!(mg > jbb - 0.05, "MG ({mg:.2}) must not trail SPECjbb ({jbb:.2})");
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(WorkloadId::Ft.name(), "FT.C");
        assert_eq!(WorkloadId::Dc.name(), "DC.B");
        assert_eq!(WorkloadId::Spec2006Mix.name(), "SPEC2006 Mixture");
    }

    #[test]
    fn part_helper_stays_aligned_and_bounded() {
        let (s, l) = part(1 << 30, 3, 16, 9, 16);
        assert_eq!(s % 4096, 0);
        assert_eq!(l % 4096, 0);
        assert!(s + l <= 1 << 30);
        // Degenerate tiny footprint still yields a usable region.
        let (s2, l2) = part(8192, 0, 1, 1, 64);
        assert_eq!(s2, 0);
        assert!(l2 >= 4096);
    }
}
