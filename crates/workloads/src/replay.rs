//! Trace replay: feeding a recorded access stream back into the driver.
//!
//! The paper's methodology is trace-driven; [`crate::trace_io`] gives the
//! workspace the `HMT1` on-disk format, and this module gives it the
//! runtime half — a decoded, content-addressed trace that the simulation
//! driver can stream exactly the way it streams a synthetic
//! [`TraceIter`]:
//!
//! * [`decode`] validates raw `HMT1` bytes into a [`TraceData`] (records
//!   plus a [`TraceSummary`] of the behaviour-relevant facts: content
//!   hash, record count, tick span, highest line address, read count).
//! * A process-global registry ([`register`]/[`lookup`]/[`unregister`])
//!   maps content hashes to decoded traces, so a `RunConfig` can name a
//!   trace by hash alone and stay `Copy`.
//! * [`ReplayIter`] streams a registered trace in driver-sized blocks,
//!   wrapping around with rebased ticks when the requested access count
//!   exceeds the trace length, and serializes its cursor for
//!   snapshot/resume.
//! * [`TraceSource`] unifies the synthetic and replay paths behind the
//!   one interface the driver loop uses (`next_block` +
//!   `save_state`/`load_state`); the synthetic arm delegates verbatim so
//!   existing snapshots stay byte-identical.

use crate::trace::{TraceIter, TraceRecord};
use crate::trace_io::BinaryTraceReader;
use hmm_sim_base::snap::{snap_hash, SnapReader, SnapResult, SnapWriter};
use hmm_sim_base::FxHashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The behaviour-relevant facts about a decoded trace. Everything the
/// canonical wire form and the run geometry need — nothing more — so two
/// uploads of the same bytes always agree field-for-field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Content hash (`snap_hash`) of the raw `HMT1` bytes; the trace's
    /// identity everywhere (registry key, wire id, cache-key input).
    pub hash: u64,
    /// Number of records.
    pub records: u64,
    /// Timestamp of the last record (ticks are non-decreasing).
    pub last_tick: u64,
    /// Highest line address (`addr >> 6`) in the trace; the footprint is
    /// `(max_line + 1) << 6`.
    pub max_line: u64,
    /// Number of read records (the rest are writes).
    pub reads: u64,
}

impl TraceSummary {
    /// The canonical 16-hex-digit spelling of the trace id.
    pub fn id(&self) -> String {
        format!("{:016x}", self.hash)
    }

    /// Program-visible footprint implied by the trace's addresses.
    pub fn footprint_bytes(&self) -> u64 {
        (self.max_line + 1) << 6
    }

    /// Fraction of records that are reads.
    pub fn read_fraction(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.reads as f64 / self.records as f64
        }
    }
}

/// A decoded trace: the summary plus the records themselves.
#[derive(Debug)]
pub struct TraceData {
    /// Behaviour-relevant facts (identity, counts, span).
    pub summary: TraceSummary,
    /// The decoded records, in file order.
    pub records: Vec<TraceRecord>,
}

/// Parse a 16-hex-digit trace id back to its hash.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Decode and validate raw `HMT1` bytes. Errors carry the underlying
/// format diagnostic ("not an HMT1 trace", "truncated varint", ...).
pub fn decode(bytes: &[u8]) -> Result<TraceData, String> {
    let mut records = Vec::new();
    for rec in BinaryTraceReader::new(bytes) {
        records.push(rec.map_err(|e| e.to_string())?);
    }
    if records.is_empty() {
        return Err("trace contains no records".into());
    }
    let mut max_line = 0u64;
    let mut reads = 0u64;
    for r in &records {
        max_line = max_line.max(r.addr.0 >> 6);
        if !r.is_write {
            reads += 1;
        }
    }
    let summary = TraceSummary {
        hash: snap_hash(bytes),
        records: records.len() as u64,
        last_tick: records.last().map_or(0, |r| r.tick),
        max_line,
        reads,
    };
    Ok(TraceData { summary, records })
}

fn registry() -> &'static Mutex<FxHashMap<u64, Arc<TraceData>>> {
    static REGISTRY: OnceLock<Mutex<FxHashMap<u64, Arc<TraceData>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Make a decoded trace available for replay by hash. Idempotent: the
/// content hash is the key, so re-registering the same trace is a no-op.
pub fn register(data: Arc<TraceData>) {
    registry().lock().unwrap().insert(data.summary.hash, data);
}

/// Look up a registered trace by content hash.
pub fn lookup(hash: u64) -> Option<Arc<TraceData>> {
    registry().lock().unwrap().get(&hash).cloned()
}

/// Summary of a registered trace, if present.
pub fn summary(hash: u64) -> Option<TraceSummary> {
    registry().lock().unwrap().get(&hash).map(|d| d.summary)
}

/// Remove a trace from the replay registry. Runs already holding an
/// `Arc` to the data are unaffected.
pub fn unregister(hash: u64) {
    registry().lock().unwrap().remove(&hash);
}

/// Streaming cursor over a registered trace, with wrap-around.
///
/// When the driver asks for more records than the trace holds, the
/// cursor wraps to the start and rebases ticks by `last_tick + 1`, so
/// the stream's timestamps stay strictly increasing across laps (the
/// controller's advance cadence requires monotone time).
#[derive(Debug, Clone)]
pub struct ReplayIter {
    data: Arc<TraceData>,
    /// Next record index within the trace.
    pos: usize,
    /// Tick offset accumulated by completed laps.
    tick_base: u64,
}

impl ReplayIter {
    /// Start a cursor at the beginning of `data`.
    pub fn new(data: Arc<TraceData>) -> Self {
        Self { data, pos: 0, tick_base: 0 }
    }

    /// Refill `out` with the next `n` records (same contract as
    /// [`TraceIter::next_block`]).
    pub fn next_block(&mut self, out: &mut Vec<TraceRecord>, n: usize) {
        out.clear();
        out.reserve(n);
        let recs = &self.data.records;
        for _ in 0..n {
            if self.pos == recs.len() {
                self.pos = 0;
                self.tick_base += self.data.summary.last_tick + 1;
            }
            let mut rec = recs[self.pos];
            rec.tick += self.tick_base;
            out.push(rec);
            self.pos += 1;
        }
    }

    /// Serialize the cursor (snapshot/resume support). The records are
    /// rebuilt from the registered trace on resume, exactly as the
    /// synthetic generator rebuilds its patterns from the config.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section(b"trcr");
        w.usize(self.pos);
        w.u64(self.tick_base);
        w.end_section();
    }

    /// Restore a cursor saved by [`ReplayIter::save_state`].
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.section(b"trcr")?;
        let pos = r.usize()?;
        if pos > self.data.records.len() {
            return Err(format!(
                "replay cursor {pos} is past the trace's {} records",
                self.data.records.len()
            ));
        }
        self.pos = pos;
        self.tick_base = r.u64()?;
        r.end_section()
    }
}

/// The driver's record source: a synthetic generator or a replay cursor.
///
/// Both arms share the `next_block` contract, and `save_state` delegates
/// verbatim — the synthetic arm writes exactly the bytes [`TraceIter`]
/// always wrote (`trce` section), so pre-existing snapshots keep their
/// byte-identical layout; replay snapshots use their own `trcr` section.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// Records generated by the synthetic workload catalog.
    Synthetic(TraceIter),
    /// Records replayed from a registered trace.
    Replay(ReplayIter),
}

impl TraceSource {
    /// Refill `out` with the next `n` records.
    pub fn next_block(&mut self, out: &mut Vec<TraceRecord>, n: usize) {
        match self {
            TraceSource::Synthetic(it) => it.next_block(out, n),
            TraceSource::Replay(it) => it.next_block(out, n),
        }
    }

    /// Serialize the source's dynamic state.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            TraceSource::Synthetic(it) => it.save_state(w),
            TraceSource::Replay(it) => it.save_state(w),
        }
    }

    /// Restore state saved by [`TraceSource::save_state`] onto a freshly
    /// built source over the same workload or trace.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        match self {
            TraceSource::Synthetic(it) => it.load_state(r),
            TraceSource::Replay(it) => it.load_state(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{workload, WorkloadId};
    use crate::trace_io::write_binary;
    use hmm_sim_base::config::SimScale;

    fn sample_bytes(n: usize, seed: u64) -> Vec<u8> {
        let recs = workload(WorkloadId::Pgbench, &SimScale { divisor: 256 }).records(seed, n);
        let mut buf = Vec::new();
        write_binary(&mut buf, recs).unwrap();
        buf
    }

    #[test]
    fn decode_builds_an_exact_summary() {
        let bytes = sample_bytes(2_000, 7);
        let data = decode(&bytes).unwrap();
        assert_eq!(data.summary.hash, snap_hash(&bytes));
        assert_eq!(data.summary.records, 2_000);
        assert_eq!(data.summary.last_tick, data.records.last().unwrap().tick);
        let max = data.records.iter().map(|r| r.addr.0 >> 6).max().unwrap();
        assert_eq!(data.summary.max_line, max);
        let reads = data.records.iter().filter(|r| !r.is_write).count() as u64;
        assert_eq!(data.summary.reads, reads);
        assert!(data.summary.footprint_bytes() > 0);
        assert!((0.0..=1.0).contains(&data.summary.read_fraction()));
    }

    #[test]
    fn decode_rejects_bad_inputs() {
        assert!(decode(b"NOPE").unwrap_err().contains("not an HMT1 trace"));
        assert!(decode(b"HMT1").unwrap_err().contains("no records"));
        let mut bytes = sample_bytes(50, 1);
        bytes.truncate(bytes.len() - 1);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn trace_id_round_trips() {
        let bytes = sample_bytes(100, 3);
        let s = decode(&bytes).unwrap().summary;
        assert_eq!(parse_trace_id(&s.id()), Some(s.hash));
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("0123456789abcde"), None, "15 digits");
        assert_eq!(parse_trace_id("0123456789abcdef"), Some(0x0123456789abcdef));
    }

    #[test]
    fn registry_round_trips_and_unregisters() {
        let bytes = sample_bytes(64, 9);
        let data = Arc::new(decode(&bytes).unwrap());
        let hash = data.summary.hash;
        register(data.clone());
        assert_eq!(summary(hash), Some(data.summary));
        assert_eq!(lookup(hash).unwrap().summary, data.summary);
        unregister(hash);
        assert!(lookup(hash).is_none());
    }

    #[test]
    fn replay_wraps_with_strictly_increasing_ticks() {
        let bytes = sample_bytes(100, 5);
        let data = Arc::new(decode(&bytes).unwrap());
        let mut it = ReplayIter::new(data.clone());
        let mut block = Vec::new();
        it.next_block(&mut block, 350);
        assert_eq!(block.len(), 350);
        for w in block.windows(2) {
            assert!(w[1].tick > w[0].tick, "{} then {}", w[0].tick, w[1].tick);
        }
        // Lap 2 replays the same addresses.
        assert_eq!(block[100].addr, block[0].addr);
        assert_eq!(block[100].is_write, block[0].is_write);
    }

    #[test]
    fn replay_blocks_are_partition_invariant() {
        let bytes = sample_bytes(300, 11);
        let data = Arc::new(decode(&bytes).unwrap());
        let mut reference = Vec::new();
        ReplayIter::new(data.clone()).next_block(&mut reference, 1_000);
        for block_size in [1usize, 7, 64, 300, 999] {
            let mut it = ReplayIter::new(data.clone());
            let mut got = Vec::new();
            let mut block = Vec::new();
            while got.len() < reference.len() {
                let n = block_size.min(reference.len() - got.len());
                it.next_block(&mut block, n);
                got.extend_from_slice(&block);
            }
            assert_eq!(got, reference, "block size {block_size}");
        }
    }

    #[test]
    fn replay_cursor_snapshots_and_resumes() {
        let bytes = sample_bytes(120, 13);
        let data = Arc::new(decode(&bytes).unwrap());
        let mut reference = Vec::new();
        ReplayIter::new(data.clone()).next_block(&mut reference, 400);

        let mut it = ReplayIter::new(data.clone());
        let mut head = Vec::new();
        it.next_block(&mut head, 250);
        let mut w = SnapWriter::new();
        it.save_state(&mut w);
        let snap = w.into_bytes();

        let mut resumed = ReplayIter::new(data);
        let mut r = SnapReader::new(&snap);
        resumed.load_state(&mut r).unwrap();
        let mut tail = Vec::new();
        resumed.next_block(&mut tail, 150);
        head.extend_from_slice(&tail);
        assert_eq!(head, reference);
    }
}
