//! Trace-file import/export.
//!
//! The paper's Section IV methodology is trace-driven: "we collected the
//! memory trace from a detailed full-system simulator and the trace file
//! records the physical address, CPU ID, time stamp, and read/write status
//! of all main memory accesses". This module gives the library the same
//! workflow: record synthetic (or externally captured) traces to a file
//! and replay them later, so experiments are repeatable bit-for-bit and
//! external traces can be plugged into the simulator.
//!
//! Two formats:
//!
//! * **binary** (`.hmt`) — compact delta encoding: LEB128 varints for the
//!   tick delta and the line address, one byte for cpu + read/write. A
//!   typical record costs 4-8 bytes instead of 18.
//! * **text** — one `tick cpu addr r|w` line per record; trivially
//!   greppable and diffable.

use crate::trace::TraceRecord;
use hmm_sim_base::addr::PhysAddr;
use std::io::{self, BufRead, Read, Write};

/// Magic bytes of the binary format ("HMT1").
pub const MAGIC: [u8; 4] = *b"HMT1";

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<Option<u64>> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut buf = [0u8; 1];
    loop {
        match r.read(&mut buf)? {
            0 => {
                return if shift == 0 {
                    Ok(None) // clean EOF between records
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated varint"))
                };
            }
            _ => {
                if shift >= 63 && buf[0] > 1 {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
                }
                v |= u64::from(buf[0] & 0x7f) << shift;
                if buf[0] & 0x80 == 0 {
                    return Ok(Some(v));
                }
                shift += 7;
            }
        }
    }
}

/// Write records in the binary format. Ticks must be non-decreasing.
pub fn write_binary<W: Write>(
    w: &mut W,
    records: impl IntoIterator<Item = TraceRecord>,
) -> io::Result<u64> {
    w.write_all(&MAGIC)?;
    let mut last_tick = 0u64;
    let mut count = 0u64;
    for rec in records {
        let delta = rec.tick.checked_sub(last_tick).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "ticks must be non-decreasing")
        })?;
        last_tick = rec.tick;
        write_varint(w, delta)?;
        write_varint(w, rec.addr.0 >> 6)?; // line address: 6 fewer bits
        let flags = (rec.cpu & 0x7f) | if rec.is_write { 0x80 } else { 0 };
        w.write_all(&[flags])?;
        count += 1;
    }
    Ok(count)
}

/// Streaming reader over the binary format.
pub struct BinaryTraceReader<R: Read> {
    inner: R,
    tick: u64,
    /// Set when the header has been validated.
    started: bool,
}

impl<R: Read> BinaryTraceReader<R> {
    /// Wrap a reader; the magic header is checked on first record.
    pub fn new(inner: R) -> Self {
        Self { inner, tick: 0, started: false }
    }

    fn check_header(&mut self) -> io::Result<()> {
        let mut magic = [0u8; 4];
        self.inner.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an HMT1 trace"));
        }
        self.started = true;
        Ok(())
    }

    fn read_record(&mut self) -> io::Result<Option<TraceRecord>> {
        if !self.started {
            self.check_header()?;
        }
        let Some(delta) = read_varint(&mut self.inner)? else {
            return Ok(None);
        };
        let line = read_varint(&mut self.inner)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated record"))?;
        let mut flags = [0u8; 1];
        self.inner.read_exact(&mut flags)?;
        self.tick += delta;
        Ok(Some(TraceRecord {
            tick: self.tick,
            cpu: flags[0] & 0x7f,
            addr: PhysAddr(line << 6),
            is_write: flags[0] & 0x80 != 0,
        }))
    }
}

impl<R: Read> Iterator for BinaryTraceReader<R> {
    type Item = io::Result<TraceRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

/// Write records in the text format: `tick cpu addr r|w`, one per line.
pub fn write_text<W: Write>(
    w: &mut W,
    records: impl IntoIterator<Item = TraceRecord>,
) -> io::Result<u64> {
    let mut count = 0;
    for rec in records {
        writeln!(
            w,
            "{} {} {:#x} {}",
            rec.tick,
            rec.cpu,
            rec.addr.0,
            if rec.is_write { 'w' } else { 'r' }
        )?;
        count += 1;
    }
    Ok(count)
}

/// Parse the text format, skipping blank lines and `#` comments.
pub fn read_text<R: BufRead>(r: R) -> io::Result<Vec<TraceRecord>> {
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut it = body.split_whitespace();
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad {what}: {body:?}", lineno + 1),
            )
        };
        let tick: u64 = it.next().ok_or_else(|| bad("tick"))?.parse().map_err(|_| bad("tick"))?;
        let cpu: u8 = it.next().ok_or_else(|| bad("cpu"))?.parse().map_err(|_| bad("cpu"))?;
        let addr_s = it.next().ok_or_else(|| bad("addr"))?;
        let addr = if let Some(hex) = addr_s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| bad("addr"))?
        } else {
            addr_s.parse().map_err(|_| bad("addr"))?
        };
        let rw = it.next().ok_or_else(|| bad("r/w"))?;
        let is_write = match rw {
            "r" | "R" => false,
            "w" | "W" => true,
            _ => return Err(bad("r/w")),
        };
        out.push(TraceRecord { tick, cpu, addr: PhysAddr(addr), is_write });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{workload, WorkloadId};
    use hmm_sim_base::config::SimScale;

    fn sample(n: usize) -> Vec<TraceRecord> {
        workload(WorkloadId::Pgbench, &SimScale { divisor: 256 }).records(7, n)
    }

    #[test]
    fn binary_round_trip() {
        let recs = sample(5_000);
        let mut buf = Vec::new();
        let written = write_binary(&mut buf, recs.iter().copied()).unwrap();
        assert_eq!(written, 5_000);
        let back: Vec<TraceRecord> =
            BinaryTraceReader::new(&buf[..]).collect::<io::Result<_>>().unwrap();
        // Addresses are stored at line granularity; everything else exact.
        assert_eq!(back.len(), recs.len());
        for (a, b) in recs.iter().zip(&back) {
            assert_eq!(a.tick, b.tick);
            assert_eq!(a.cpu, b.cpu);
            assert_eq!(a.is_write, b.is_write);
            assert_eq!(a.addr.0 & !63, b.addr.0);
        }
    }

    #[test]
    fn binary_is_compact() {
        let recs = sample(10_000);
        let mut buf = Vec::new();
        write_binary(&mut buf, recs.iter().copied()).unwrap();
        let per_record = buf.len() as f64 / recs.len() as f64;
        assert!(per_record < 10.0, "expected <10 B/record, got {per_record:.1}");
    }

    #[test]
    fn text_round_trip() {
        let recs = sample(500);
        let mut buf = Vec::new();
        write_text(&mut buf, recs.iter().copied()).unwrap();
        let back = read_text(&buf[..]).unwrap();
        // Text keeps full byte addresses.
        assert_eq!(recs, back);
    }

    #[test]
    fn text_parses_comments_and_blank_lines() {
        let src = b"# a comment\n\n100 0 0x40 r\n200 3 128 w # trailing\n";
        let recs = read_text(&src[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].tick, 100);
        assert_eq!(recs[1].cpu, 3);
        assert_eq!(recs[1].addr.0, 128);
        assert!(recs[1].is_write);
    }

    #[test]
    fn text_rejects_malformed_lines() {
        assert!(read_text(&b"1 2\n"[..]).is_err());
        assert!(read_text(&b"x 0 0x40 r\n"[..]).is_err());
        assert!(read_text(&b"1 0 0x40 q\n"[..]).is_err());
    }

    #[test]
    fn binary_rejects_wrong_magic() {
        let buf = b"NOPE_____";
        let out: io::Result<Vec<TraceRecord>> = BinaryTraceReader::new(&buf[..]).collect();
        assert!(out.is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let recs = sample(10);
        let mut buf = Vec::new();
        write_binary(&mut buf, recs.iter().copied()).unwrap();
        buf.truncate(buf.len() - 1);
        let out: io::Result<Vec<TraceRecord>> = BinaryTraceReader::new(&buf[..]).collect();
        assert!(out.is_err());
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX / 2, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut &buf[..]).unwrap(), Some(v));
        }
    }
}
