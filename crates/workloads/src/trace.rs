//! Trace records and the workload generator.
//!
//! A trace record carries exactly the fields the paper's trace files do:
//! "the trace file records the physical address, CPU ID, time stamp, and
//! read/write status of all main memory accesses" (Section IV).

use crate::pattern::Pattern;
use hmm_sim_base::addr::PhysAddr;
use hmm_sim_base::cycles::Cycle;
use hmm_sim_base::rng::SimRng;
use hmm_sim_base::snap::{SnapReader, SnapResult, SnapWriter};

/// One main-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival timestamp in CPU cycles.
    pub tick: Cycle,
    /// Originating core.
    pub cpu: u8,
    /// Physical address (the address space the OS manages; the controller
    /// translates it to a machine address).
    pub addr: PhysAddr,
    /// Store (true) or load (false).
    pub is_write: bool,
}

/// One per-CPU access stream: a weighted mixture of patterns.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Core this stream runs on.
    pub cpu: u8,
    /// `(weight, pattern)` pairs; each access draws a pattern with
    /// probability proportional to its weight.
    pub mix: Vec<(f64, Pattern)>,
}

impl Stream {
    /// A stream with a single pattern.
    pub fn single(cpu: u8, pattern: Pattern) -> Self {
        Self { cpu, mix: vec![(1.0, pattern)] }
    }
}

/// A complete workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name ("FT.C", "pgbench", ...).
    pub name: String,
    /// Declared memory footprint in bytes (Table I / Table III).
    pub footprint_bytes: u64,
    /// Mean gap between consecutive main-memory accesses, in CPU cycles
    /// (the workload's memory intensity).
    pub mean_gap: Cycle,
    /// Per-CPU streams.
    pub streams: Vec<Stream>,
}

impl Workload {
    /// Validate that every pattern stays inside the declared footprint and
    /// the mixture weights are usable.
    pub fn validate(&self) -> Result<(), String> {
        if self.streams.is_empty() {
            return Err(format!("workload {} has no streams", self.name));
        }
        if self.mean_gap == 0 {
            return Err("mean_gap must be non-zero".into());
        }
        for s in &self.streams {
            if s.mix.is_empty() {
                return Err(format!("stream on cpu {} has an empty mixture", s.cpu));
            }
            let total: f64 = s.mix.iter().map(|(w, _)| *w).sum();
            if total <= 0.0 {
                return Err("mixture weights must sum to a positive value".into());
            }
            for (_, p) in &s.mix {
                if p.region_end() > self.footprint_bytes {
                    return Err(format!(
                        "pattern in {} reaches {:#x}, beyond footprint {:#x}",
                        self.name,
                        p.region_end(),
                        self.footprint_bytes
                    ));
                }
            }
        }
        Ok(())
    }

    /// Create an infinite, deterministic record iterator.
    pub fn iter(&self, seed: u64) -> TraceIter {
        self.validate().expect("invalid workload");
        let parent = SimRng::new(seed);
        TraceIter {
            // Mixture weights never change mid-trace; precomputing the
            // per-stream totals keeps the per-record draw summation-free.
            mix_totals: self.streams.iter().map(|s| s.mix.iter().map(|(w, _)| *w).sum()).collect(),
            streams: self.streams.clone(),
            cdf: build_stream_cdf(&self.streams),
            rng: parent.fork(0xACCE55),
            tick: 0,
            mean_gap: self.mean_gap,
        }
    }

    /// Materialise the first `n` records (convenience for tests/benches).
    pub fn records(&self, seed: u64, n: usize) -> Vec<TraceRecord> {
        self.iter(seed).take(n).collect()
    }
}

fn build_stream_cdf(streams: &[Stream]) -> Vec<f64> {
    // Streams are drawn uniformly (each core issues at the same rate);
    // a weighted variant would go here if a workload needed asymmetric
    // cores.
    let n = streams.len() as f64;
    (1..=streams.len()).map(|i| i as f64 / n).collect()
}

/// Infinite iterator over a workload's records.
#[derive(Debug, Clone)]
pub struct TraceIter {
    streams: Vec<Stream>,
    cdf: Vec<f64>,
    /// Per-stream mixture weight totals (same summation order as the
    /// original per-draw sum, so draws are bit-identical).
    mix_totals: Vec<f64>,
    rng: SimRng,
    tick: Cycle,
    mean_gap: Cycle,
}

impl TraceIter {
    /// Generate one record. `lo`/`hi` are the (loop-invariant) jitter
    /// bounds and `last` the highest stream index — hoisted by the block
    /// path, recomputed per call by the `Iterator` path; the draw
    /// sequence is identical either way.
    #[inline]
    fn gen_one(&mut self, lo: Cycle, hi: Cycle, last: usize) -> TraceRecord {
        // Uniform jitter around the mean keeps arrivals aperiodic without
        // the cost of exponential sampling.
        self.tick += self.rng.range(lo, hi);

        let u = self.rng.unit_f64();
        let si = self.cdf.partition_point(|&c| c <= u).min(last);
        let stream = &mut self.streams[si];

        let pi = if stream.mix.len() == 1 {
            0
        } else {
            let total = self.mix_totals[si];
            let mut draw = self.rng.unit_f64() * total;
            let mut idx = 0;
            for (i, (w, _)) in stream.mix.iter().enumerate() {
                if draw < *w {
                    idx = i;
                    break;
                }
                draw -= *w;
                idx = i;
            }
            idx
        };
        let cpu = stream.cpu;
        let (offset, is_write) = stream.mix[pi].1.next(&mut self.rng);
        TraceRecord { tick: self.tick, cpu, addr: PhysAddr(offset), is_write }
    }

    /// Jitter bounds and stream-index cap, shared by both generation
    /// paths so they cannot drift apart.
    #[inline]
    fn gen_params(&self) -> (Cycle, Cycle, usize) {
        let lo = (self.mean_gap / 2).max(1);
        let hi = (self.mean_gap * 3 / 2 + 1).max(lo + 1);
        (lo, hi, self.streams.len() - 1)
    }

    /// Serialize the generator's dynamic state (snapshot/resume support):
    /// the RNG stream, the current timestamp, and every pattern cursor.
    /// The workload structure (streams, mixtures, CDF) is rebuilt from the
    /// run configuration on resume via [`Workload::iter`].
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.section(b"trce");
        self.rng.save_state(w);
        w.u64(self.tick);
        w.usize(self.streams.len());
        for s in &self.streams {
            w.usize(s.mix.len());
            for (_, p) in &s.mix {
                p.save_state(w);
            }
        }
        w.end_section();
    }

    /// Restore state saved by [`TraceIter::save_state`] onto a freshly
    /// built iterator over the same workload.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.section(b"trce")?;
        self.rng.load_state(r)?;
        self.tick = r.u64()?;
        let n = r.usize()?;
        if n != self.streams.len() {
            return Err(format!("stream count mismatch: expected {}", self.streams.len()));
        }
        for s in &mut self.streams {
            let m = r.usize()?;
            if m != s.mix.len() {
                return Err(format!("mixture size mismatch: expected {}", s.mix.len()));
            }
            for (_, p) in &mut s.mix {
                p.load_state(r)?;
            }
        }
        r.end_section()
    }

    /// Refill `out` with the next `n` records (clearing any previous
    /// contents but keeping the allocation).
    ///
    /// Produces exactly the records `n` successive [`Iterator::next`]
    /// calls would — same RNG draw order, same ticks — but with the
    /// jitter bounds and stream-count bound hoisted out of the loop and
    /// no per-record `Option` plumbing, so the driver can stream blocks
    /// into the simulator instead of ping-ponging between generator and
    /// controller code every access.
    pub fn next_block(&mut self, out: &mut Vec<TraceRecord>, n: usize) {
        out.clear();
        out.reserve(n);
        let (lo, hi, last) = self.gen_params();
        for _ in 0..n {
            let rec = self.gen_one(lo, hi, last);
            out.push(rec);
        }
    }
}

impl Iterator for TraceIter {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let (lo, hi, last) = self.gen_params();
        Some(self.gen_one(lo, hi, last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Workload {
        Workload {
            name: "toy".into(),
            footprint_bytes: 1 << 24,
            mean_gap: 20,
            streams: vec![
                Stream::single(0, Pattern::sweep(0, 1 << 20, 64, 0.2)),
                Stream::single(1, Pattern::zipf_pages(1 << 20, 1 << 23, 0.9, 0.4)),
            ],
        }
    }

    #[test]
    fn validation_passes_for_toy() {
        toy().validate().unwrap();
    }

    #[test]
    fn validation_rejects_escaping_pattern() {
        let mut w = toy();
        w.footprint_bytes = 1 << 20; // second stream escapes
        assert!(w.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_gap() {
        let mut w = toy();
        w.mean_gap = 0;
        assert!(w.validate().is_err());
    }

    #[test]
    fn ticks_are_strictly_increasing() {
        let recs = toy().records(1, 10_000);
        for w in recs.windows(2) {
            assert!(w[1].tick > w[0].tick);
        }
    }

    #[test]
    fn mean_gap_approximately_respected() {
        let recs = toy().records(1, 10_000);
        let span = recs.last().unwrap().tick - recs[0].tick;
        let mean = span as f64 / (recs.len() - 1) as f64;
        assert!((18.0..22.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(toy().records(9, 1000), toy().records(9, 1000));
    }

    /// The batched path must reproduce the one-at-a-time iterator exactly,
    /// for any block-size partition of the request — including ragged
    /// tails and resumption across blocks.
    #[test]
    fn next_block_matches_iterator_for_any_block_size() {
        let w = toy();
        let reference: Vec<TraceRecord> = w.iter(11).take(5_000).collect();
        for block_size in [1usize, 7, 64, 1000, 4096, 5_000, 9_999] {
            let mut it = w.iter(11);
            let mut got = Vec::new();
            let mut block = Vec::new();
            while got.len() < reference.len() {
                let n = block_size.min(reference.len() - got.len());
                it.next_block(&mut block, n);
                assert_eq!(block.len(), n);
                got.extend_from_slice(&block);
            }
            assert_eq!(got, reference, "block size {block_size}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(toy().records(1, 1000), toy().records(2, 1000));
    }

    #[test]
    fn both_cpus_appear() {
        let recs = toy().records(3, 1000);
        let c0 = recs.iter().filter(|r| r.cpu == 0).count();
        let c1 = recs.iter().filter(|r| r.cpu == 1).count();
        assert!(c0 > 300 && c1 > 300, "cpu split {c0}/{c1}");
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let w = toy();
        for r in w.records(5, 20_000) {
            assert!(r.addr.0 < w.footprint_bytes);
        }
    }

    #[test]
    fn mixture_draws_all_patterns() {
        let w = Workload {
            name: "mix".into(),
            footprint_bytes: 1 << 24,
            mean_gap: 10,
            streams: vec![Stream {
                cpu: 0,
                mix: vec![
                    (0.5, Pattern::sweep(0, 4096, 64, 0.0)),
                    (0.5, Pattern::uniform(1 << 23, 1 << 23, 0.0)),
                ],
            }],
        };
        let recs = w.records(4, 4_000);
        let low = recs.iter().filter(|r| r.addr.0 < 4096).count();
        let high = recs.iter().filter(|r| r.addr.0 >= (1 << 23)).count();
        assert!(low > 1_000 && high > 1_000, "mixture split {low}/{high}");
    }
}
