//! Composable address-stream primitives.
//!
//! A [`Pattern`] produces byte offsets (plus a read/write flag) within a
//! region of the workload's footprint. Patterns carry their own cursor
//! state, so cloning a pattern clones its position. All randomness comes
//! from the caller-supplied [`SimRng`], keeping traces reproducible.

use hmm_sim_base::rng::{SimRng, Zipf};
use hmm_sim_base::snap::{SnapReader, SnapResult, SnapWriter};

/// Application-level page used by the locality patterns (independent of
/// the migration macro-page size).
pub const APP_PAGE_BYTES: u64 = 4096;

/// One address-stream primitive.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// Sequential sweep over `[start, start+len)` with a byte stride,
    /// wrapping at the end. Streams like an FFT pass or a grid smoother.
    Sweep {
        /// Region start offset (bytes).
        start: u64,
        /// Region length (bytes).
        len: u64,
        /// Stride between consecutive accesses (bytes).
        stride: u64,
        /// Probability an access is a store.
        write_ratio: f64,
        /// Cursor.
        pos: u64,
    },
    /// Zipf-popular 4 KB pages scattered pseudo-randomly over the region
    /// (rank-to-page scattering prevents the hot set from trivially
    /// coinciding with the lowest addresses, which static mapping would
    /// capture for free).
    ZipfPages {
        /// Region start offset (bytes).
        start: u64,
        /// Region length (bytes).
        len: u64,
        /// Probability an access is a store.
        write_ratio: f64,
        /// Rank sampler.
        zipf: Zipf,
        /// Power-of-two page count the ranks are scattered over.
        page_domain: u64,
    },
    /// Uniform random accesses over the region.
    Uniform {
        /// Region start offset (bytes).
        start: u64,
        /// Region length (bytes).
        len: u64,
        /// Probability an access is a store.
        write_ratio: f64,
    },
    /// Pointer chase: a pseudo-random permutation walk over the region's
    /// cache lines (mcf-style dependent misses, no spatial locality).
    Chase {
        /// Region start offset (bytes).
        start: u64,
        /// Region length (bytes).
        len: u64,
        /// Probability an access is a store.
        write_ratio: f64,
        /// Cursor (line index within region).
        pos: u64,
    },
    /// Pass-structured sweep: the region is divided into windows; each
    /// window is swept `passes` times before moving on (an FFT dimension
    /// pass or a sort phase re-reads its working chunk several times).
    /// This is what gives large-footprint workloads DRAM-cache-capturable
    /// reuse despite streaming through gigabytes overall.
    WindowedSweep {
        /// Region start offset (bytes).
        start: u64,
        /// Region length (bytes).
        len: u64,
        /// Window length (bytes).
        window: u64,
        /// Sweeps per window before advancing.
        passes: u32,
        /// Stride between consecutive accesses (bytes).
        stride: u64,
        /// Probability an access is a store.
        write_ratio: f64,
        /// Current window index.
        win: u64,
        /// Completed passes in the current window.
        pass: u32,
        /// Cursor within the window.
        pos: u64,
    },
    /// Multigrid V-cycle: sweeps each level from finest to coarsest and
    /// back, one full sweep per level visit. `levels` are `(start, len)`
    /// regions, finest first.
    VCycle {
        /// Grid levels, finest first.
        levels: Vec<(u64, u64)>,
        /// Sweep stride in bytes.
        stride: u64,
        /// Probability an access is a store.
        write_ratio: f64,
        /// Current level index.
        level: usize,
        /// true = descending towards coarse grids.
        descending: bool,
        /// Cursor within the current level.
        pos: u64,
    },
}

/// Largest power of two `<= n`, at least 1.
fn pow2_floor(n: u64) -> u64 {
    if n == 0 {
        1
    } else {
        1u64 << (63 - n.leading_zeros())
    }
}

/// Hot pages cluster in blocks of this many app pages (256 KB): real
/// allocators give hot structures contiguity at this scale, which is what
/// lets coarse macro pages stay meaningfully hot (the paper migrates pages
/// up to 4 MB). Blocks themselves are scattered so the hot set never
/// coincides with the low addresses a static mapping would capture free.
const SCATTER_GROUP_PAGES: u64 = 64;

/// Scatter a zipf rank over the page domain: consecutive ranks stay
/// together within a [`SCATTER_GROUP_PAGES`] block, blocks are permuted
/// with a fixed odd multiplier (a bijection on the power-of-two domain).
#[inline]
fn scatter(rank: u64, domain: u64) -> u64 {
    let g = SCATTER_GROUP_PAGES.min(domain);
    let group = rank / g;
    let within = rank % g;
    let groups = (domain / g).max(1);
    // Affine permutation on the power-of-two group space (odd multiplier,
    // odd offset) so no group — in particular not the hottest, group 0 —
    // keeps its identity position.
    let scattered =
        group.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x5851_F42D_4C95_7F2D) % groups;
    scattered * g + within
}

impl Pattern {
    /// A wrapping sequential sweep.
    pub fn sweep(start: u64, len: u64, stride: u64, write_ratio: f64) -> Self {
        assert!(len > 0 && stride > 0);
        Pattern::Sweep { start, len, stride, write_ratio, pos: 0 }
    }

    /// Zipf-popular pages with skew `theta` over a region.
    pub fn zipf_pages(start: u64, len: u64, theta: f64, write_ratio: f64) -> Self {
        assert!(len >= APP_PAGE_BYTES);
        let pages = pow2_floor(len / APP_PAGE_BYTES);
        // Cap the rank table so huge footprints stay cheap to construct;
        // past ~256k ranks the tail is effectively uniform anyway.
        let ranks = pages.min(1 << 18) as usize;
        Pattern::ZipfPages {
            start,
            len,
            write_ratio,
            zipf: Zipf::new(ranks, theta),
            page_domain: pages,
        }
    }

    /// Uniform random accesses.
    pub fn uniform(start: u64, len: u64, write_ratio: f64) -> Self {
        assert!(len > 0);
        Pattern::Uniform { start, len, write_ratio }
    }

    /// A pointer chase over the region's lines.
    pub fn chase(start: u64, len: u64, write_ratio: f64) -> Self {
        assert!(len >= 64);
        Pattern::Chase { start, len, write_ratio, pos: 0 }
    }

    /// A pass-structured sweep: `passes` sweeps per `window`, then advance.
    pub fn windowed_sweep(
        start: u64,
        len: u64,
        window: u64,
        passes: u32,
        stride: u64,
        write_ratio: f64,
    ) -> Self {
        assert!(window > 0 && len >= window && passes >= 1);
        assert!(stride > 0 && stride <= window, "stride must fit in the window");
        Pattern::WindowedSweep {
            start,
            len,
            window,
            passes,
            stride,
            write_ratio,
            win: 0,
            pass: 0,
            pos: 0,
        }
    }

    /// A multigrid V-cycle over `levels` (finest first).
    pub fn v_cycle(levels: Vec<(u64, u64)>, stride: u64, write_ratio: f64) -> Self {
        assert!(!levels.is_empty() && stride > 0);
        assert!(levels.iter().all(|&(_, len)| len >= stride));
        Pattern::VCycle { levels, stride, write_ratio, level: 0, descending: true, pos: 0 }
    }

    /// Offset the pattern's cursor by a fraction of its period, so
    /// parallel workers (or repeated runs) start from different positions.
    /// OpenMP-style codes genuinely partition their sweeps this way.
    /// No-op for stateless patterns.
    pub fn with_phase(mut self, frac: f64) -> Self {
        let frac = frac.rem_euclid(1.0);
        match &mut self {
            Pattern::Sweep { len, stride, pos, .. } => {
                let steps = *len / *stride;
                *pos = ((steps as f64 * frac) as u64 % steps.max(1)) * *stride;
            }
            Pattern::WindowedSweep { len, window, win, .. } => {
                let windows = (*len / *window).max(1);
                *win = (windows as f64 * frac) as u64 % windows;
            }
            Pattern::Chase { len, pos, .. } => {
                let lines = (*len / 64).max(1);
                *pos = (lines as f64 * frac) as u64 % lines;
            }
            Pattern::VCycle { levels, level, .. } => {
                *level = ((levels.len() as f64 * frac) as usize).min(levels.len() - 1);
            }
            Pattern::ZipfPages { .. } | Pattern::Uniform { .. } => {}
        }
        self
    }

    /// Produce the next `(byte offset, is_write)` pair.
    pub fn next(&mut self, rng: &mut SimRng) -> (u64, bool) {
        match self {
            Pattern::Sweep { start, len, stride, write_ratio, pos } => {
                let addr = *start + *pos;
                *pos += *stride;
                if *pos >= *len {
                    // Carry the remainder so a stride that does not divide
                    // the region length walks a different phase each wrap
                    // (a transpose pass visits different columns, not the
                    // same subset forever).
                    *pos %= *len;
                }
                (addr, rng.chance(*write_ratio))
            }
            Pattern::ZipfPages { start, len, write_ratio, zipf, page_domain } => {
                let rank = zipf.sample(rng) as u64;
                let page = scatter(rank, *page_domain);
                let within = rng.below(APP_PAGE_BYTES) & !63;
                let addr = (*start + page * APP_PAGE_BYTES + within).min(*start + *len - 64);
                (addr, rng.chance(*write_ratio))
            }
            Pattern::Uniform { start, len, write_ratio } => {
                let addr = *start + (rng.below(*len) & !63);
                (addr, rng.chance(*write_ratio))
            }
            Pattern::Chase { start, len, write_ratio, pos } => {
                let lines = *len / 64;
                // A full-period LCG step over the line space (Hull-Dobell:
                // odd increment, multiplier = 1 mod 4 on a pow2 domain).
                let domain = pow2_floor(lines);
                *pos = (pos.wrapping_mul(4 * 1103 + 1).wrapping_add(12345)) & (domain - 1);
                (*start + *pos * 64, rng.chance(*write_ratio))
            }
            Pattern::WindowedSweep {
                start,
                len,
                window,
                passes,
                stride,
                write_ratio,
                win,
                pass,
                pos,
            } => {
                let windows = (*len / *window).max(1);
                let addr = *start + *win * *window + *pos;
                *pos += *stride;
                if *pos >= *window {
                    *pos %= *window;
                    *pass += 1;
                    if *pass == *passes {
                        *pass = 0;
                        *win = (*win + 1) % windows;
                    }
                }
                (addr, rng.chance(*write_ratio))
            }
            Pattern::VCycle { levels, stride, write_ratio, level, descending, pos } => {
                let (lstart, llen) = levels[*level];
                let addr = lstart + *pos;
                *pos += *stride;
                if *pos >= llen {
                    *pos = 0;
                    // Move to the next level of the V.
                    if *descending {
                        if *level + 1 < levels.len() {
                            *level += 1;
                        } else {
                            *descending = false;
                            *level = level.saturating_sub(1);
                        }
                    } else if *level > 0 {
                        *level -= 1;
                    } else {
                        *descending = true;
                        if levels.len() > 1 {
                            *level = 1;
                        }
                    }
                }
                (addr, rng.chance(*write_ratio))
            }
        }
    }

    /// Serialize the pattern's cursor (snapshot/resume support). The
    /// pattern's structure — regions, strides, samplers — is rebuilt from
    /// the workload definition on resume; only the position state that
    /// advances per access is recorded.
    pub fn save_state(&self, w: &mut SnapWriter) {
        match self {
            Pattern::Sweep { pos, .. } => {
                w.u8(0);
                w.u64(*pos);
            }
            Pattern::ZipfPages { .. } => w.u8(1),
            Pattern::Uniform { .. } => w.u8(2),
            Pattern::Chase { pos, .. } => {
                w.u8(3);
                w.u64(*pos);
            }
            Pattern::WindowedSweep { win, pass, pos, .. } => {
                w.u8(4);
                w.u64(*win);
                w.u32(*pass);
                w.u64(*pos);
            }
            Pattern::VCycle { level, descending, pos, .. } => {
                w.u8(5);
                w.usize(*level);
                w.bool(*descending);
                w.u64(*pos);
            }
        }
    }

    /// Restore a cursor saved by [`Pattern::save_state`] onto a freshly
    /// built pattern of the same kind.
    pub fn load_state(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, Pattern::Sweep { pos, .. }) => *pos = r.u64()?,
            (1, Pattern::ZipfPages { .. }) | (2, Pattern::Uniform { .. }) => {}
            (3, Pattern::Chase { pos, .. }) => *pos = r.u64()?,
            (4, Pattern::WindowedSweep { win, pass, pos, .. }) => {
                *win = r.u64()?;
                *pass = r.u32()?;
                *pos = r.u64()?;
            }
            (5, Pattern::VCycle { level, descending, pos, levels, .. }) => {
                let lv = r.usize()?;
                if lv >= levels.len() {
                    return Err(format!("v-cycle level {lv} out of range"));
                }
                *level = lv;
                *descending = r.bool()?;
                *pos = r.u64()?;
            }
            (t, _) => return Err(format!("pattern kind mismatch (snapshot tag {t})")),
        }
        Ok(())
    }

    /// Highest byte offset this pattern can emit (exclusive), used to
    /// validate that mixtures stay inside the declared footprint.
    pub fn region_end(&self) -> u64 {
        match self {
            Pattern::Sweep { start, len, .. }
            | Pattern::ZipfPages { start, len, .. }
            | Pattern::Uniform { start, len, .. }
            | Pattern::Chase { start, len, .. }
            | Pattern::WindowedSweep { start, len, .. } => start + len,
            Pattern::VCycle { levels, .. } => levels.iter().map(|&(s, l)| s + l).max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    #[test]
    fn sweep_is_sequential_and_wraps() {
        let mut p = Pattern::sweep(1000, 256, 64, 0.0);
        let mut r = rng();
        let offs: Vec<u64> = (0..5).map(|_| p.next(&mut r).0).collect();
        assert_eq!(offs, vec![1000, 1064, 1128, 1192, 1000]);
    }

    #[test]
    fn zipf_pages_concentrate_heat() {
        let mut p = Pattern::zipf_pages(0, 64 << 20, 0.99, 0.0);
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let (a, _) = p.next(&mut r);
            *counts.entry(a / APP_PAGE_BYTES).or_insert(0u64) += 1;
        }
        let mut v: Vec<u64> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = v.iter().take(v.len() / 10 + 1).sum();
        assert!(
            top as f64 > 0.4 * 50_000.0,
            "top-decile pages should take >40% of accesses, got {top}"
        );
    }

    #[test]
    fn zipf_hot_blocks_are_scattered_away_from_low_addresses() {
        let region = 64u64 << 20;
        let mut p = Pattern::zipf_pages(0, region, 0.99, 0.0);
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let (a, _) = p.next(&mut r);
            *counts.entry(a / APP_PAGE_BYTES).or_insert(0u64) += 1;
        }
        let mut hot: Vec<(u64, u64)> = counts.into_iter().collect();
        hot.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
        // Hot pages cluster into 256 KB blocks (allocator locality), but
        // the blocks themselves must be spread over the region — a static
        // low-address mapping must not capture the hot set for free.
        let top_blocks: std::collections::HashSet<u64> =
            hot.iter().take(256).map(|&(p, _)| p / SCATTER_GROUP_PAGES).collect();
        assert!(top_blocks.len() >= 3, "expected several hot blocks");
        let low_eighth = region / APP_PAGE_BYTES / SCATTER_GROUP_PAGES / 8;
        let in_low = top_blocks.iter().filter(|&&b| b < low_eighth).count();
        assert!(in_low < top_blocks.len(), "hot blocks must not all sit in the lowest addresses");
        let span = top_blocks.iter().max().unwrap() - top_blocks.iter().min().unwrap();
        assert!(span > 4, "blocks should be spread, span {span}");
    }

    #[test]
    fn patterns_stay_in_region() {
        let mut r = rng();
        let cases: Vec<Pattern> = vec![
            Pattern::sweep(4096, 1 << 20, 64, 0.3),
            Pattern::zipf_pages(4096, 1 << 20, 0.9, 0.3),
            Pattern::uniform(4096, 1 << 20, 0.3),
            Pattern::chase(4096, 1 << 20, 0.3),
            Pattern::v_cycle(vec![(4096, 1 << 20), (1 << 21, 1 << 18)], 64, 0.3),
        ];
        for mut p in cases {
            let end = p.region_end();
            for _ in 0..10_000 {
                let (a, _) = p.next(&mut r);
                assert!(a >= 4096 && a < end, "addr {a:#x} escaped region (end {end:#x})");
            }
        }
    }

    #[test]
    fn chase_visits_many_distinct_lines() {
        let mut p = Pattern::chase(0, 1 << 20, 0.0);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(p.next(&mut r).0);
        }
        assert!(seen.len() > 9_000, "chase should rarely revisit, saw {}", seen.len());
    }

    #[test]
    fn v_cycle_visits_all_levels_in_order() {
        // Two tiny levels; stride = len so each visit is one access.
        let mut p = Pattern::v_cycle(vec![(0, 64), (1024, 64), (2048, 64)], 64, 0.0);
        let mut r = rng();
        let seq: Vec<u64> = (0..8).map(|_| p.next(&mut r).0).collect();
        // V shape: 0, 1024, 2048 (bottom), 1024, 0, then down again 1024, ...
        assert_eq!(seq[0], 0);
        assert_eq!(seq[1], 1024);
        assert_eq!(seq[2], 2048);
        assert_eq!(seq[3], 1024);
        assert_eq!(seq[4], 0);
        assert_eq!(seq[5], 1024);
    }

    #[test]
    fn windowed_sweep_repeats_then_advances() {
        // window = 128 B, 2 passes, stride 64: expect 0,64,0,64,128,192,...
        let mut p = Pattern::windowed_sweep(0, 512, 128, 2, 64, 0.0);
        let mut r = rng();
        let seq: Vec<u64> = (0..10).map(|_| p.next(&mut r).0).collect();
        assert_eq!(seq, vec![0, 64, 0, 64, 128, 192, 128, 192, 256, 320]);
    }

    #[test]
    fn windowed_sweep_wraps_to_first_window() {
        let mut p = Pattern::windowed_sweep(0, 256, 128, 1, 64, 0.0);
        let mut r = rng();
        let seq: Vec<u64> = (0..6).map(|_| p.next(&mut r).0).collect();
        assert_eq!(seq, vec![0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn write_ratio_respected() {
        let mut p = Pattern::uniform(0, 1 << 20, 0.25);
        let mut r = rng();
        let writes = (0..40_000).filter(|_| p.next(&mut r).1).count();
        assert!((8_000..12_000).contains(&writes), "writes: {writes}");
    }

    #[test]
    fn determinism_across_clones() {
        let p0 = Pattern::zipf_pages(0, 1 << 24, 0.9, 0.5);
        let mut a = p0.clone();
        let mut b = p0;
        let mut ra = SimRng::new(7);
        let mut rb = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next(&mut ra), b.next(&mut rb));
        }
    }

    #[test]
    fn pow2_floor_edges() {
        assert_eq!(pow2_floor(0), 1);
        assert_eq!(pow2_floor(1), 1);
        assert_eq!(pow2_floor(3), 2);
        assert_eq!(pow2_floor(1024), 1024);
        assert_eq!(pow2_floor(1025), 1024);
    }
}
