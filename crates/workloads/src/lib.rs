//! Synthetic memory-trace generators for the paper's workloads.
//!
//! The original study collected main-memory traces from a full-system
//! simulator (COTSon) running NPB 3.3, a SPEC2006 mixture, pgbench, a Nutch
//! indexer and SPECjbb2005. Those traces are proprietary-toolchain
//! artefacts, so this crate synthesises equivalent streams instead: each
//! workload is described by its memory footprint (paper Table I/III), its
//! memory intensity, and a mixture of access patterns chosen to match the
//! qualitative locality class of the original program (streaming FFT
//! transposes, multigrid V-cycles, zipfian OLTP, pointer chasing, ...).
//! The migration study depends on exactly these properties — footprint and
//! page-level temporal locality — not on instruction semantics, which is
//! why the substitution preserves the experiments (DESIGN.md section 2).
//!
//! * [`trace`] — the trace record type (physical address, CPU ID,
//!   timestamp, read/write — the fields the paper's trace files record).
//! * [`pattern`] — composable address-stream primitives (sweeps, zipf
//!   pages, pointer chases, V-cycles, uniform noise).
//! * [`catalog`] — the named workloads of Tables I and III with their
//!   footprints and pattern mixtures.
//! * [`trace_io`] — trace-file export/import (compact binary and plain
//!   text), matching the paper's trace-driven methodology.
//! * [`replay`] — decoded-trace registry and the replay cursor that
//!   streams recorded traces back through the simulation driver.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod pattern;
pub mod replay;
pub mod trace;
pub mod trace_io;

pub use catalog::{footprint_bytes, npb_footprint_mb, workload, WorkloadId};
pub use pattern::Pattern;
pub use replay::{ReplayIter, TraceData, TraceSource, TraceSummary};
pub use trace::{TraceIter, TraceRecord, Workload};
pub use trace_io::{read_text, write_binary, write_text, BinaryTraceReader};
