//! `hmm-ingest` — the content-addressed, durable trace registry.
//!
//! The paper's methodology is trace-driven; this crate is how traces get
//! *into* the system from outside: raw `HMT1` blobs are validated by a
//! full decode, keyed by the content hash of their bytes, kept hot in the
//! process-global replay registry (`hmm_workloads::replay`) for the
//! simulation driver, and — when a directory is configured — persisted
//! with the same discipline as the serving layer's result store:
//!
//! ```text
//! <dir>/entries/<id>      validated HMT1 blobs, framed with a header
//! <dir>/quarantine/<id>.N bad files moved aside, never served
//! <dir>/tmp/              staging for atomic writes
//! ```
//!
//! Every write goes temp-file-then-rename; every read (including boot
//! rehydration) re-verifies the header — id, length, checksum — *and*
//! re-decodes the `HMT1` payload, so a blob that cannot replay exactly
//! as uploaded is quarantined rather than served. There is no engine
//! stamp: a trace is input data, versioned by its own `HMT1` magic, and
//! stays valid across engine releases.
//!
//! Disk failures degrade, never break, ingestion: a trace whose write
//! failed is still registered for replay (memory-only, like the result
//! store's degraded mode), the first failure logs one line, and every
//! failure is counted.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use hmm_sim_base::snap::snap_hash;
use hmm_workloads::replay::{self, TraceSummary};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic token of the on-disk entry framing.
const TRACE_MAGIC: &str = "hmm-trace-v1";

#[derive(Debug)]
struct Dirs {
    entries: PathBuf,
    quarantine: PathBuf,
    tmp: PathBuf,
}

/// The durable trace registry. All methods take `&self`; the registry is
/// shared across the serving layer's connection threads.
#[derive(Debug)]
pub struct TraceRegistry {
    dirs: Option<Dirs>,
    /// id → summary, ordered so listings are deterministic.
    metas: Mutex<BTreeMap<u64, TraceSummary>>,
    /// Monotone name disambiguator for temp and quarantine files.
    seq: AtomicU64,
    quarantined: AtomicU64,
    io_errors: AtomicU64,
    io_error_logged: AtomicBool,
}

fn entry_name(hash: u64) -> String {
    format!("{hash:016x}")
}

impl TraceRegistry {
    /// An in-memory registry (no durability); used when the server runs
    /// without `--store-dir`.
    pub fn memory() -> Self {
        Self {
            dirs: None,
            metas: Mutex::new(BTreeMap::new()),
            seq: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            io_error_logged: AtomicBool::new(false),
        }
    }

    /// Open (creating if needed) a durable registry rooted at `dir`, and
    /// rehydrate every verifiable entry into the replay registry.
    /// Returns the registry and how many traces were restored.
    pub fn open(dir: &Path) -> std::io::Result<(Self, usize)> {
        let dirs = Dirs {
            entries: dir.join("entries"),
            quarantine: dir.join("quarantine"),
            tmp: dir.join("tmp"),
        };
        for d in [&dirs.entries, &dirs.quarantine, &dirs.tmp] {
            fs::create_dir_all(d)?;
        }
        // Stray temp files are crash leftovers; no live path refers to
        // them.
        if let Ok(rd) = fs::read_dir(&dirs.tmp) {
            for f in rd.flatten() {
                let _ = fs::remove_file(f.path());
            }
        }
        let reg = Self { dirs: Some(dirs), ..Self::memory() };
        let restored = reg.rehydrate();
        Ok((reg, restored))
    }

    /// Traces moved to quarantine over this registry's lifetime.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Disk I/O failures (ingestion degraded to memory-only for those).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Registered trace count.
    pub fn len(&self) -> usize {
        self.metas.lock().unwrap().len()
    }

    /// Whether no traces are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn io_error(&self, what: &str, e: &std::io::Error) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        if !self.io_error_logged.swap(true, Ordering::SeqCst) {
            eprintln!(
                "hmm-ingest: trace {what} failed ({e}); continuing memory-only \
                 (further trace I/O errors are counted, not logged)"
            );
        }
    }

    fn write_atomic(&self, dirs: &Dirs, path: &Path, frame: &[&[u8]]) -> std::io::Result<()> {
        let staged = dirs.tmp.join(format!(
            "{}.{}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("trace"),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&staged)?;
        for part in frame {
            f.write_all(part)?;
        }
        f.sync_all()?;
        drop(f);
        match fs::rename(&staged, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&staged);
                Err(e)
            }
        }
    }

    fn quarantine_file(&self, dirs: &Dirs, path: &Path, why: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace");
        let dest =
            dirs.quarantine.join(format!("{name}.{}", self.seq.fetch_add(1, Ordering::Relaxed)));
        eprintln!("hmm-ingest: trace entry {name} {why}; quarantined to {}", dest.display());
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }

    /// Validate and register one uploaded trace. Idempotent: the content
    /// hash is the identity, so re-uploading the same bytes returns the
    /// same summary. Errors are malformed-input diagnostics ("not an
    /// HMT1 trace", "truncated varint", ...); disk trouble degrades to
    /// memory-only registration instead of failing the upload.
    pub fn put(&self, bytes: &[u8]) -> Result<TraceSummary, String> {
        let data = replay::decode(bytes)?;
        let summary = data.summary;
        replay::register(Arc::new(data));
        if let Some(dirs) = &self.dirs {
            let path = dirs.entries.join(entry_name(summary.hash));
            let header = format!("{TRACE_MAGIC} {:016x} {}\n", summary.hash, bytes.len());
            if let Err(e) = self.write_atomic(dirs, &path, &[header.as_bytes(), bytes]) {
                self.io_error("write", &e);
            }
        }
        self.metas.lock().unwrap().insert(summary.hash, summary);
        Ok(summary)
    }

    /// Summary of a registered trace.
    pub fn get(&self, hash: u64) -> Option<TraceSummary> {
        self.metas.lock().unwrap().get(&hash).copied()
    }

    /// All registered summaries, in id order.
    pub fn list(&self) -> Vec<TraceSummary> {
        self.metas.lock().unwrap().values().copied().collect()
    }

    /// Remove a trace: forget its summary, unregister it from the replay
    /// registry, and delete its blob. Returns whether it existed. Runs
    /// already holding the decoded records are unaffected.
    pub fn delete(&self, hash: u64) -> bool {
        let existed = self.metas.lock().unwrap().remove(&hash).is_some();
        if existed {
            replay::unregister(hash);
            if let Some(dirs) = &self.dirs {
                let path = dirs.entries.join(entry_name(hash));
                match fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => self.io_error("delete", &e),
                }
            }
        }
        existed
    }

    /// Scan `entries/`, verify every blob end to end (framing, checksum,
    /// full `HMT1` decode), register the good ones and quarantine the
    /// rest. Called once from `open`.
    fn rehydrate(&self) -> usize {
        let Some(dirs) = &self.dirs else { return 0 };
        let Ok(rd) = fs::read_dir(&dirs.entries) else { return 0 };
        let mut paths: Vec<(u64, PathBuf)> = Vec::new();
        for f in rd.flatten() {
            let path = f.path();
            let Some(hash) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| (n.len() == 16).then(|| u64::from_str_radix(n, 16).ok()).flatten())
            else {
                // Not one of ours; leave it alone.
                continue;
            };
            paths.push((hash, path));
        }
        paths.sort();
        let mut restored = 0;
        for (hash, path) in paths {
            let raw = match fs::read(&path) {
                Ok(raw) => raw,
                Err(e) => {
                    self.io_error("read", &e);
                    continue;
                }
            };
            match parse_entry(hash, &raw) {
                Ok(data) => {
                    let summary = data.summary;
                    replay::register(Arc::new(data));
                    self.metas.lock().unwrap().insert(hash, summary);
                    restored += 1;
                }
                Err(why) => self.quarantine_file(dirs, &path, &why),
            }
        }
        restored
    }
}

/// Verify one stored blob end to end and decode it. Any failure is a
/// corruption diagnostic (there is no "stale" arm — traces are
/// engine-independent input data).
fn parse_entry(hash: u64, raw: &[u8]) -> Result<replay::TraceData, String> {
    let nl = raw.iter().position(|&b| b == b'\n').ok_or("has no header line")?;
    let header = std::str::from_utf8(&raw[..nl]).map_err(|_| "header not UTF-8")?;
    let fields: Vec<&str> = header.split(' ').collect();
    let [magic, hkey, len] = fields[..] else {
        return Err(format!("header has {} fields, want 3", fields.len()));
    };
    if magic != TRACE_MAGIC {
        return Err(format!("bad magic '{magic}'"));
    }
    if u64::from_str_radix(hkey, 16) != Ok(hash) {
        return Err(format!("header id {hkey} disagrees with file name"));
    }
    let len: usize = len.parse().map_err(|_| "unparsable body length")?;
    let body = &raw[nl + 1..];
    if body.len() != len {
        return Err(format!("body is {} bytes, header says {len}", body.len()));
    }
    if snap_hash(body) != hash {
        return Err("fails its content hash".into());
    }
    let data = replay::decode(body).map_err(|e| format!("does not decode: {e}"))?;
    debug_assert_eq!(data.summary.hash, hash);
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmm_sim_base::config::SimScale;
    use hmm_workloads::{workload, write_binary, WorkloadId};

    fn sample_bytes(n: usize, seed: u64) -> Vec<u8> {
        let recs = workload(WorkloadId::Pgbench, &SimScale { divisor: 256 }).records(seed, n);
        let mut buf = Vec::new();
        write_binary(&mut buf, recs).unwrap();
        buf
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hmm-ingest-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_put_get_list_delete() {
        let reg = TraceRegistry::memory();
        let a = reg.put(&sample_bytes(500, 1)).unwrap();
        let b = reg.put(&sample_bytes(500, 2)).unwrap();
        assert_ne!(a.hash, b.hash);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(a.hash), Some(a));
        let ids: Vec<u64> = reg.list().iter().map(|s| s.hash).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "listing is id-ordered");
        assert!(replay::lookup(a.hash).is_some(), "put registers for replay");
        assert!(reg.delete(a.hash));
        assert!(!reg.delete(a.hash), "second delete is a miss");
        assert!(reg.get(a.hash).is_none());
        assert!(replay::lookup(a.hash).is_none(), "delete unregisters replay");
        reg.delete(b.hash);
    }

    #[test]
    fn put_is_idempotent_by_content() {
        let reg = TraceRegistry::memory();
        let bytes = sample_bytes(300, 3);
        let a = reg.put(&bytes).unwrap();
        let b = reg.put(&bytes).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        reg.delete(a.hash);
    }

    #[test]
    fn rejects_malformed_uploads() {
        let reg = TraceRegistry::memory();
        assert!(reg.put(b"NOPE").unwrap_err().contains("not an HMT1 trace"));
        let mut truncated = sample_bytes(50, 4);
        truncated.truncate(truncated.len() - 1);
        assert!(reg.put(&truncated).is_err());
        assert_eq!(reg.len(), 0);
    }

    #[test]
    fn durable_round_trip_survives_reopen() {
        let dir = tmpdir("reopen");
        let bytes = sample_bytes(400, 5);
        let summary = {
            let (reg, restored) = TraceRegistry::open(&dir).unwrap();
            assert_eq!(restored, 0);
            reg.put(&bytes).unwrap()
        };
        replay::unregister(summary.hash); // simulate process death
        let (reg, restored) = TraceRegistry::open(&dir).unwrap();
        assert_eq!(restored, 1);
        assert_eq!(reg.get(summary.hash), Some(summary));
        assert!(replay::lookup(summary.hash).is_some(), "rehydration re-registers replay");
        reg.delete(summary.hash);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_is_quarantined_never_served() {
        let dir = tmpdir("corrupt");
        let bytes = sample_bytes(200, 6);
        let summary = {
            let (reg, _) = TraceRegistry::open(&dir).unwrap();
            reg.put(&bytes).unwrap()
        };
        replay::unregister(summary.hash);
        // Flip one payload byte on disk.
        let path = dir.join("entries").join(entry_name(summary.hash));
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        fs::write(&path, &raw).unwrap();

        let (reg, restored) = TraceRegistry::open(&dir).unwrap();
        assert_eq!(restored, 0);
        assert_eq!(reg.quarantined(), 1);
        assert!(reg.get(summary.hash).is_none(), "corrupt blob must never be served");
        assert!(replay::lookup(summary.hash).is_none());
        assert!(!path.exists(), "bad blob left the live path");
        assert_eq!(fs::read_dir(dir.join("quarantine")).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_blob_is_quarantined() {
        let dir = tmpdir("torn");
        let summary = {
            let (reg, _) = TraceRegistry::open(&dir).unwrap();
            reg.put(&sample_bytes(200, 7)).unwrap()
        };
        replay::unregister(summary.hash);
        let path = dir.join("entries").join(entry_name(summary.hash));
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let (reg, restored) = TraceRegistry::open(&dir).unwrap();
        assert_eq!(restored, 0);
        assert_eq!(reg.quarantined(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_removes_the_blob_from_disk() {
        let dir = tmpdir("delete");
        let (reg, _) = TraceRegistry::open(&dir).unwrap();
        let summary = reg.put(&sample_bytes(150, 8)).unwrap();
        let path = dir.join("entries").join(entry_name(summary.hash));
        assert!(path.exists());
        assert!(reg.delete(summary.hash));
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_leftovers_are_cleared_on_open() {
        let dir = tmpdir("leftover");
        fs::create_dir_all(dir.join("tmp")).unwrap();
        fs::write(dir.join("tmp").join("trace.0"), b"half-written").unwrap();
        let _ = TraceRegistry::open(&dir).unwrap();
        assert_eq!(fs::read_dir(dir.join("tmp")).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
