//! A generic set-associative, write-back/write-allocate cache.
//!
//! Two replacement policies are provided: true LRU (per-set recency
//! counters) and the clock-based pseudo-LRU the paper uses for its
//! on-package slot tracking ("clock-based pseudo-LRU algorithm, which is
//! used in real microprocessor implementation", Section III-B).

use hmm_sim_base::addr::LineAddr;

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Clock (second-chance) pseudo-LRU: one reference bit per way and a
    /// rotating hand.
    Clock,
}

/// Static shape of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u32,
    /// Replacement policy.
    pub policy: ReplPolicy,
}

impl CacheConfig {
    /// Convenience constructor with 64 B lines and LRU.
    pub fn new(capacity_bytes: u64, associativity: u32) -> Self {
        Self { capacity_bytes, associativity, line_bytes: 64, policy: ReplPolicy::Lru }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.associativity as u64 * self.line_bytes as u64)
    }

    /// Validate shape invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity_bytes == 0 || self.associativity == 0 || self.line_bytes == 0 {
            return Err("cache dimensions must be non-zero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        let sets = self.sets();
        if sets == 0 {
            return Err("capacity must hold at least one full set".into());
        }
        if !sets.is_power_of_two() {
            return Err(format!("set count must be a power of two, got {sets}"));
        }
        Ok(())
    }
}

/// Counters maintained by every cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Valid lines evicted to make room.
    pub evictions: u64,
    /// Dirty lines evicted (candidate write-backs).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in `[0, 1]`; 0 when no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Whether it was dirty (needs a write-back).
    pub dirty: bool,
}

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been allocated, possibly evicting a
    /// victim.
    Miss(Option<Victim>),
}

impl AccessOutcome {
    /// True for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU recency stamp, or the clock reference bit (0/1).
    meta: u64,
}

/// The cache proper.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    ways: Vec<Way>, // sets * associativity, set-major
    /// Per-set LRU tick or clock hand.
    set_meta: Vec<u64>,
    set_mask: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build an empty cache. Panics on invalid configuration (a programming
    /// error, not a runtime condition).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        let sets = cfg.sets();
        Self {
            cfg,
            ways: vec![Way::default(); (sets * cfg.associativity as u64) as usize],
            set_meta: vec![0; sets as usize],
            set_mask: sets - 1,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset the counters (e.g. after warm-up), keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn index(&self, line: LineAddr) -> (usize, u64) {
        // line is addr >> 6; line size may exceed 64 B, so renormalise.
        let block = line.base() / self.cfg.line_bytes as u64;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_mask.trailing_ones();
        (set, tag)
    }

    #[inline]
    fn set_ways(&mut self, set: usize) -> &mut [Way] {
        let a = self.cfg.associativity as usize;
        &mut self.ways[set * a..(set + 1) * a]
    }

    /// Look up `line`; on a miss, allocate it (write-allocate). `is_write`
    /// sets the dirty bit.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> AccessOutcome {
        self.stats.accesses += 1;
        let (set, tag) = self.index(line);
        let policy = self.cfg.policy;
        // set_meta is the LRU tick under Lru and the clock hand under Clock.
        let tick = match policy {
            ReplPolicy::Lru => {
                let t = &mut self.set_meta[set];
                *t += 1;
                *t
            }
            ReplPolicy::Clock => 1,
        };
        let assoc = self.cfg.associativity as usize;

        // Hit path.
        for w in self.set_ways(set) {
            if w.valid && w.tag == tag {
                w.dirty |= is_write;
                w.meta = tick;
                self.stats.hits += 1;
                return AccessOutcome::Hit;
            }
        }

        // Miss: find a victim way.
        let victim_idx = match policy {
            ReplPolicy::Lru => {
                let ways = self.set_ways(set);
                let mut best = 0;
                for (i, w) in ways.iter().enumerate() {
                    if !w.valid {
                        best = i;
                        break;
                    }
                    if w.meta < ways[best].meta {
                        best = i;
                    }
                }
                best
            }
            ReplPolicy::Clock => {
                let mut hand = self.set_meta[set] as usize;
                let ways = self.set_ways(set);
                let idx = if let Some(i) = ways.iter().position(|w| !w.valid) {
                    i
                } else {
                    // Second chance: clear reference bits under the hand
                    // until an unreferenced way is found.
                    loop {
                        if ways[hand].meta == 0 {
                            break hand;
                        }
                        ways[hand].meta = 0;
                        hand = (hand + 1) % assoc;
                    }
                };
                // Installation advances the hand past the chosen frame.
                self.set_meta[set] = ((idx + 1) % assoc) as u64;
                idx
            }
        };

        let line_bytes = self.cfg.line_bytes as u64;
        let sets_bits = self.set_mask.trailing_ones();
        let victim = {
            let w = &mut self.set_ways(set)[victim_idx];
            let victim = if w.valid {
                let block = (w.tag << sets_bits) | set as u64;
                Some(Victim { line: LineAddr(block * line_bytes / 64), dirty: w.dirty })
            } else {
                None
            };
            *w = Way { tag, valid: true, dirty: is_write, meta: tick };
            victim
        };
        if let Some(v) = victim {
            self.stats.evictions += 1;
            if v.dirty {
                self.stats.writebacks += 1;
            }
        }
        AccessOutcome::Miss(victim)
    }

    /// Is the line currently resident?
    pub fn contains(&self, line: LineAddr) -> bool {
        let (set, tag) = {
            let block = line.base() / self.cfg.line_bytes as u64;
            ((block & self.set_mask) as usize, block >> self.set_mask.trailing_ones())
        };
        let a = self.cfg.associativity as usize;
        self.ways[set * a..(set + 1) * a].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Remove a line if present (inclusive back-invalidation). Returns
    /// whether the invalidated copy was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (set, tag) = self.index(line);
        for w in self.set_ways(set) {
            if w.valid && w.tag == tag {
                w.valid = false;
                let dirty = w.dirty;
                w.dirty = false;
                return Some(dirty);
            }
        }
        None
    }

    /// Install a line without touching the demand hit/miss counters (used
    /// for prefetch fills). Evictions and write-backs are still counted.
    /// Returns the victim, if one was displaced. No-op `None` if already
    /// resident.
    pub fn fill(&mut self, line: LineAddr) -> Option<Victim> {
        if self.contains(line) {
            return None;
        }
        self.stats.accesses += 1;
        self.stats.hits += 1; // net-zero on the demand miss count
        match self.access(line, false) {
            AccessOutcome::Miss(v) => {
                // access() counted one access + zero hits for the miss;
                // compensate so fills are invisible to demand metrics.
                self.stats.accesses -= 2;
                self.stats.hits -= 1;
                v
            }
            AccessOutcome::Hit => unreachable!("checked absent above"),
        }
    }

    /// Mark a resident line dirty (used when a lower level writes back into
    /// this one). No-op if absent.
    pub fn mark_dirty(&mut self, line: LineAddr) {
        let (set, tag) = self.index(line);
        for w in self.set_ways(set) {
            if w.valid && w.tag == tag {
                w.dirty = true;
                return;
            }
        }
    }

    /// Serialize the dynamic state (tags, valid/dirty bits, replacement
    /// metadata, counters) for snapshot/resume. The shape (`cfg`,
    /// `set_mask`) is configuration and is reconstructed, not saved.
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        w.usize(self.ways.len());
        for way in &self.ways {
            w.u64(way.tag);
            w.bool(way.valid);
            w.bool(way.dirty);
            w.u64(way.meta);
        }
        w.usize(self.set_meta.len());
        for &m in &self.set_meta {
            w.u64(m);
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.hits);
        w.u64(self.stats.evictions);
        w.u64(self.stats.writebacks);
    }

    /// Restore state saved by [`SetAssocCache::save_state`] onto a freshly
    /// constructed cache with the same configuration.
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        let n = r.usize()?;
        if n != self.ways.len() {
            return Err(format!("cache way count mismatch: expected {}", self.ways.len()));
        }
        for way in &mut self.ways {
            way.tag = r.u64()?;
            way.valid = r.bool()?;
            way.dirty = r.bool()?;
            way.meta = r.u64()?;
        }
        let n = r.usize()?;
        if n != self.set_meta.len() {
            return Err(format!("cache set count mismatch: expected {}", self.set_meta.len()));
        }
        for m in &mut self.set_meta {
            *m = r.u64()?;
        }
        self.stats.accesses = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.evictions = r.u64()?;
        self.stats.writebacks = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: ReplPolicy) -> SetAssocCache {
        // 2 sets x 2 ways x 64 B = 256 B.
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 256,
            associativity: 2,
            line_bytes: 64,
            policy,
        })
    }

    fn line(i: u64) -> LineAddr {
        LineAddr(i)
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(8 << 20, 16).validate().is_ok());
        assert!(CacheConfig::new(0, 16).validate().is_err());
        assert!(CacheConfig::new(100, 3).validate().is_err());
        let mut c = CacheConfig::new(8 << 20, 16);
        c.line_bytes = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sets_math_matches_paper_l3() {
        // 8 MB, 16-way, 64 B lines -> 8192 sets.
        assert_eq!(CacheConfig::new(8 << 20, 16).sets(), 8192);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small(ReplPolicy::Lru);
        assert!(matches!(c.access(line(0), false), AccessOutcome::Miss(None)));
        assert!(c.access(line(0), false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(ReplPolicy::Lru);
        // Lines 0, 2, 4 map to set 0 (even line index with 2 sets).
        c.access(line(0), false);
        c.access(line(2), false);
        c.access(line(0), false); // refresh 0
        match c.access(line(4), false) {
            AccessOutcome::Miss(Some(v)) => assert_eq!(v.line, line(2)),
            other => panic!("expected eviction of line 2, got {other:?}"),
        }
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small(ReplPolicy::Lru);
        c.access(line(0), true); // dirty
        c.access(line(2), false);
        match c.access(line(4), false) {
            AccessOutcome::Miss(Some(v)) => {
                assert_eq!(v.line, line(0));
                assert!(v.dirty);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = small(ReplPolicy::Lru);
        c.access(line(0), false);
        c.access(line(0), true); // hit, marks dirty
        c.access(line(2), false);
        match c.access(line(4), false) {
            AccessOutcome::Miss(Some(v)) => assert!(v.dirty),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn victim_address_round_trips() {
        // Bigger cache; check the reconstructed victim address equals the
        // original line.
        let mut c = SetAssocCache::new(CacheConfig::new(64 << 10, 4));
        let probe = LineAddr(0xabcd);
        c.access(probe, false);
        // Force eviction: fill the same set with 4 more distinct tags.
        let sets = c.config().sets();
        let mut victims = Vec::new();
        for k in 1..=4 {
            let conflicting = LineAddr(probe.0 + k * sets);
            if let AccessOutcome::Miss(Some(v)) = c.access(conflicting, false) {
                victims.push(v.line);
            }
        }
        assert!(victims.contains(&probe), "victims: {victims:?}");
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = small(ReplPolicy::Lru);
        c.access(line(0), true);
        assert_eq!(c.invalidate(line(0)), Some(true));
        assert!(!c.contains(line(0)));
        assert_eq!(c.invalidate(line(0)), None);
    }

    #[test]
    fn mark_dirty_causes_writeback_later() {
        let mut c = small(ReplPolicy::Lru);
        c.access(line(0), false);
        c.mark_dirty(line(0));
        c.access(line(2), false);
        match c.access(line(4), false) {
            AccessOutcome::Miss(Some(v)) => assert!(v.dirty),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clock_policy_gives_second_chance() {
        let mut c = small(ReplPolicy::Clock);
        c.access(line(0), false); // way 0
        c.access(line(2), false); // way 1
                                  // Both ref bits set: the next miss sweeps them clear and evicts the
                                  // first frame under the hand (line 0).
        match c.access(line(4), false) {
            AccessOutcome::Miss(Some(v)) => assert_eq!(v.line, line(0)),
            other => panic!("unexpected {other:?}"),
        }
        // Now line 4 has its ref bit set, line 2 does not. Touch line 4 and
        // miss again: the clock must spare the referenced line 4 and evict
        // the unreferenced line 2 — the second chance in action.
        assert!(c.access(line(4), false).is_hit());
        match c.access(line(8), false) {
            AccessOutcome::Miss(Some(v)) => assert_eq!(v.line, line(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.contains(line(4)));
    }

    #[test]
    fn clock_and_lru_agree_on_sequential_sweep_miss_rate() {
        let mut lru = SetAssocCache::new(CacheConfig::new(4 << 10, 4));
        let mut clk = SetAssocCache::new(CacheConfig {
            policy: ReplPolicy::Clock,
            ..CacheConfig::new(4 << 10, 4)
        });
        // A working set twice the cache: both policies should miss ~100%
        // on a cyclic sweep.
        for _ in 0..4 {
            for i in 0..128u64 {
                lru.access(line(i), false);
                clk.access(line(i), false);
            }
        }
        assert!(lru.stats().miss_rate() > 0.95);
        assert!(clk.stats().miss_rate() > 0.7); // clock is only pseudo-LRU
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = SetAssocCache::new(CacheConfig::new(64 << 10, 8));
        for _ in 0..10 {
            for i in 0..512u64 {
                c.access(line(i), false);
            }
        }
        // 512 lines = 32 KB fits in 64 KB: only cold misses.
        assert_eq!(c.stats().misses(), 512);
    }

    #[test]
    fn fill_is_invisible_to_demand_stats() {
        let mut c = small(ReplPolicy::Lru);
        assert_eq!(c.fill(line(0)), None);
        assert_eq!(c.stats().accesses, 0, "fills must not count as demand");
        assert_eq!(c.stats().misses(), 0);
        assert!(c.access(line(0), false).is_hit(), "filled line serves demand");
        // Filling a resident line is a no-op.
        assert_eq!(c.fill(line(0)), None);
        // Fills still evict and report victims.
        c.fill(line(2));
        let v = c.fill(line(4));
        assert!(v.is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small(ReplPolicy::Lru);
        c.access(line(0), false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(line(0), false).is_hit());
    }

    #[test]
    fn save_load_round_trips_contents_and_stats() {
        let mut c = small(ReplPolicy::Lru);
        c.access(line(0), true);
        c.access(line(2), false);
        c.access(line(4), false); // evicts line 0 (dirty)
        let mut w = hmm_sim_base::snap::SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = small(ReplPolicy::Lru);
        let mut r = hmm_sim_base::snap::SnapReader::new(&bytes);
        fresh.load_state(&mut r).unwrap();
        assert_eq!(fresh.stats(), c.stats());
        assert!(fresh.contains(line(2)));
        assert!(fresh.contains(line(4)));
        assert!(!fresh.contains(line(0)));
        // Replacement metadata restored: behaviour continues identically.
        assert_eq!(fresh.access(line(6), false), c.access(line(6), false));
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let c = small(ReplPolicy::Lru);
        let mut w = hmm_sim_base::snap::SnapWriter::new();
        c.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut bigger = SetAssocCache::new(CacheConfig::new(512, 2));
        let mut r = hmm_sim_base::snap::SnapReader::new(&bytes);
        assert!(bigger.load_state(&mut r).is_err());
    }

    #[test]
    fn larger_line_size_indexing() {
        // 128 B lines: two 64 B line addresses share one cache block.
        let mut c = SetAssocCache::new(CacheConfig {
            capacity_bytes: 1024,
            associativity: 2,
            line_bytes: 128,
            policy: ReplPolicy::Lru,
        });
        assert!(!c.access(LineAddr(0), false).is_hit());
        assert!(c.access(LineAddr(1), false).is_hit(), "same 128 B block");
        assert!(!c.access(LineAddr(2), false).is_hit(), "next block");
    }
}
