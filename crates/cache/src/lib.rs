//! Cache models for the heterogeneous-main-memory study.
//!
//! Section II of the paper compares using the on-package DRAM as a *cache*
//! (an L4 behind the SRAM hierarchy) against mapping it into main memory.
//! That comparison needs:
//!
//! * [`set_assoc`] — a generic set-associative cache with LRU and
//!   clock-based pseudo-LRU replacement, write-back/write-allocate.
//! * [`hierarchy`] — the paper's SRAM hierarchy: private 32 KB L1 and
//!   256 KB L2 per core, shared inclusive 8 MB 16-way L3 (Table II), with
//!   back-invalidation on L3 evictions.
//! * [`prefetch`] — an optional per-core stream prefetcher (the related
//!   work the paper declares orthogonal; used to show the heterogeneous
//!   memory composes with prefetching).
//! * [`dram_cache`] — the tags-in-DRAM L4: a 15-way set-associative cache
//!   living in a 16-way data array, with the tags of each set packed into
//!   the 16th line. Tag and data are read *sequentially*, so a hit costs
//!   two on-package DRAM accesses and a miss determination costs one.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dram_cache;
pub mod hierarchy;
pub mod prefetch;
pub mod set_assoc;

pub use dram_cache::{DramCache, DramCacheConfig, L4Outcome};
pub use hierarchy::{AccessResult, Hierarchy, HierarchyConfig, HitLevel, MemRequest};
pub use prefetch::{PrefetchConfig, StreamPrefetcher};
pub use set_assoc::{AccessOutcome, CacheConfig, CacheStats, ReplPolicy, SetAssocCache, Victim};
