//! The tags-in-DRAM L4 cache of Section I.
//!
//! Commodity DRAM has no tag arrays, and a multi-gigabyte cache's tags
//! (6.7 % of data) are far too large for the CPU die. The paper therefore
//! "implements a 15-way set associative cache in the space of a 16-way
//! set-associative data array, packing all the tags for a set into the 16th
//! cache line for each set", and accesses *tags first, then data*:
//!
//! * hit  → tag line read + data line read, sequential: **2x** the
//!   on-package DRAM access time (Table II: 140 cycles);
//! * miss → tag line read only (**1x**, 70 cycles), after which the
//!   off-package access proceeds.
//!
//! Functionally it is a 15-way write-back cache; this module wraps
//! [`SetAssocCache`] with that geometry and the sequential-access latency
//! model.

use crate::set_assoc::{AccessOutcome, CacheConfig, CacheStats, ReplPolicy, SetAssocCache, Victim};
use hmm_sim_base::addr::LineAddr;
use hmm_sim_base::config::LatencyConfig;
use hmm_sim_base::cycles::Cycle;

/// Shape of the DRAM cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCacheConfig {
    /// Usable *data* capacity in bytes. The paper's 1 GB on-package array
    /// yields 15/16 of that as data: pass the full array size here and the
    /// constructor derives the 15-way usable capacity.
    pub array_bytes: u64,
    /// Line size (64 B).
    pub line_bytes: u32,
}

impl DramCacheConfig {
    /// The paper's 1 GB on-package array.
    pub fn paper_default() -> Self {
        Self { array_bytes: 1 << 30, line_bytes: 64 }
    }

    /// Sets in the array: each set occupies 16 lines (15 data + 1 tag).
    pub fn sets(&self) -> u64 {
        self.array_bytes / (16 * self.line_bytes as u64)
    }

    /// Usable data capacity (15 of every 16 lines).
    pub fn data_bytes(&self) -> u64 {
        self.array_bytes / 16 * 15
    }
}

/// Result of one L4 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L4Outcome {
    /// Whether the data was present.
    pub hit: bool,
    /// Latency charged for the L4 portion of the access (tag + data on a
    /// hit, tag only on a miss).
    pub latency: Cycle,
    /// A dirty victim that must be written back off-package.
    pub writeback: Option<LineAddr>,
}

/// The DRAM L4 cache.
#[derive(Debug, Clone)]
pub struct DramCache {
    inner: SetAssocCache,
    hit_latency: Cycle,
    tag_latency: Cycle,
}

impl DramCache {
    /// Build the cache. `latency` provides the on-package access time the
    /// sequential tag/data reads are charged at.
    pub fn new(cfg: DramCacheConfig, latency: &LatencyConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "L4 set count must be a power of two");
        let inner = SetAssocCache::new(CacheConfig {
            // 15 ways of data; capacity = sets * 15 * line.
            capacity_bytes: sets * 15 * cfg.line_bytes as u64,
            associativity: 15,
            line_bytes: cfg.line_bytes,
            policy: ReplPolicy::Lru,
        });
        Self {
            inner,
            hit_latency: latency.l4_hit_analytic(),
            tag_latency: latency.l4_miss_analytic(),
        }
    }

    /// Tag + data hit latency (2x on-package access).
    pub fn hit_latency(&self) -> Cycle {
        self.hit_latency
    }

    /// Miss-determination latency (tag access only).
    pub fn tag_latency(&self) -> Cycle {
        self.tag_latency
    }

    /// Access one line; allocates on miss (the fill happens when the
    /// off-package data returns, which the caller accounts separately).
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> L4Outcome {
        match self.inner.access(line, is_write) {
            AccessOutcome::Hit => {
                L4Outcome { hit: true, latency: self.hit_latency, writeback: None }
            }
            AccessOutcome::Miss(victim) => L4Outcome {
                hit: false,
                latency: self.tag_latency,
                writeback: victim.and_then(|v: Victim| v.dirty.then_some(v.line)),
            },
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Reset counters after warm-up.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Serialize the tag/data array state for snapshot/resume.
    pub fn save_state(&self, w: &mut hmm_sim_base::snap::SnapWriter) {
        self.inner.save_state(w);
    }

    /// Restore state saved by [`DramCache::save_state`] onto a freshly
    /// constructed cache with the same configuration.
    pub fn load_state(
        &mut self,
        r: &mut hmm_sim_base::snap::SnapReader<'_>,
    ) -> hmm_sim_base::snap::SnapResult<()> {
        self.inner.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> DramCache {
        // A small array for tests: 1 MB.
        DramCache::new(
            DramCacheConfig { array_bytes: 1 << 20, line_bytes: 64 },
            &LatencyConfig::default(),
        )
    }

    #[test]
    fn paper_geometry() {
        let cfg = DramCacheConfig::paper_default();
        // 1 GB / (16 x 64 B) = 1 Mi sets.
        assert_eq!(cfg.sets(), 1 << 20);
        assert_eq!(cfg.data_bytes(), (1u64 << 30) / 16 * 15);
    }

    #[test]
    fn hit_costs_double_access_miss_costs_tag_only() {
        let mut c = mk();
        let miss = c.access(LineAddr(1), false);
        assert!(!miss.hit);
        assert_eq!(miss.latency, 70, "miss determination = one on-package access");
        let hit = c.access(LineAddr(1), false);
        assert!(hit.hit);
        assert_eq!(hit.latency, 140, "hit = sequential tag + data accesses");
    }

    #[test]
    fn fifteen_way_sets() {
        let mut c = mk();
        let sets = DramCacheConfig { array_bytes: 1 << 20, line_bytes: 64 }.sets();
        // Fill one set with 15 distinct lines: all fit.
        for k in 0..15u64 {
            c.access(LineAddr(7 + k * sets), false);
        }
        for k in 0..15u64 {
            assert!(c.access(LineAddr(7 + k * sets), false).hit, "way {k} evicted too early");
        }
        // The 16th conflicting line must evict.
        let out = c.access(LineAddr(7 + 15 * sets), false);
        assert!(!out.hit);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = mk();
        let sets = DramCacheConfig { array_bytes: 1 << 20, line_bytes: 64 }.sets();
        c.access(LineAddr(7), true); // dirty
        for k in 1..=15u64 {
            c.access(LineAddr(7 + k * sets), false);
        }
        // Line 7 was LRU; its eviction must surface as a write-back.
        let evicted: Vec<_> =
            (1..=15u64).map(|k| c.access(LineAddr(7 + k * sets), false)).collect();
        let _ = evicted;
        // Re-fill to make sure the dirty line is gone and was reported.
        // (It was evicted during the loop above.)
        assert!(c.stats().writebacks >= 1);
    }

    #[test]
    fn latency_model_follows_config() {
        let lat = LatencyConfig { dram_core: 60, ..LatencyConfig::default() };
        let c = DramCache::new(DramCacheConfig { array_bytes: 1 << 20, line_bytes: 64 }, &lat);
        assert_eq!(c.hit_latency(), 2 * lat.on_package_analytic());
        assert_eq!(c.tag_latency(), lat.on_package_analytic());
    }
}
