//! The SRAM cache hierarchy of the paper's quad-core target (Table II):
//! private L1 (32 KB, 8-way, 2 cycles) and L2 (256 KB, 8-way, 5 cycles) per
//! core, and a shared, inclusive L3 (8 MB, 16-way, 25 cycles).
//!
//! Inclusion is enforced the way the paper's Intel-i7-like target does it:
//! when a line leaves the L3, any copies in the private levels are
//! back-invalidated; a dirty private copy folds its data into the L3
//! victim's write-back.

use crate::prefetch::{PrefetchConfig, StreamPrefetcher};
use crate::set_assoc::{AccessOutcome, CacheConfig, SetAssocCache};
use hmm_sim_base::addr::{LineAddr, PhysAddr};
use hmm_sim_base::cycles::Cycle;

/// Latency and shape of the three SRAM levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (private L1/L2 pairs).
    pub cores: usize,
    /// Per-core L1 data cache shape.
    pub l1: CacheConfig,
    /// L1 hit latency.
    pub l1_latency: Cycle,
    /// Per-core L2 shape.
    pub l2: CacheConfig,
    /// L2 hit latency.
    pub l2_latency: Cycle,
    /// Shared L3 shape.
    pub l3: CacheConfig,
    /// L3 hit latency.
    pub l3_latency: Cycle,
    /// Optional per-core stream prefetcher feeding the L3 (the related
    /// work the paper declares orthogonal). `None` disables it.
    pub prefetch: Option<PrefetchConfig>,
}

impl HierarchyConfig {
    /// The paper's Table II configuration.
    pub fn paper_default() -> Self {
        Self {
            cores: 4,
            l1: CacheConfig::new(32 << 10, 8),
            l1_latency: 2,
            l2: CacheConfig::new(256 << 10, 8),
            l2_latency: 5,
            l3: CacheConfig::new(8 << 20, 16),
            l3_latency: 25,
            prefetch: None,
        }
    }

    /// Same hierarchy with a different L3 capacity (the Fig. 4 sweep).
    pub fn with_l3_capacity(mut self, bytes: u64) -> Self {
        self.l3.capacity_bytes = bytes;
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Hit in the private L1.
    L1,
    /// Hit in the private L2.
    L2,
    /// Hit in the shared L3.
    L3,
    /// Missed the SRAM hierarchy entirely: main memory (or L4) must serve.
    Memory,
}

/// A demand request the hierarchy emits towards memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Line to fetch.
    pub line: LineAddr,
    /// Whether the originating instruction was a store (the memory system
    /// sees a read-for-ownership either way; this flag is kept for power
    /// accounting).
    pub is_write: bool,
}

/// Result of pushing one access through the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessResult {
    /// Deepest level consulted.
    pub level: HitLevel,
    /// SRAM lookup latency (cumulative over the levels consulted). Memory
    /// latency is added by the caller.
    pub latency: Cycle,
    /// Demand fetch to send to memory, if the access missed everywhere.
    pub memory: Option<MemRequest>,
    /// Dirty lines leaving the L3 (write-backs towards memory).
    pub writebacks: Vec<LineAddr>,
}

/// The three-level hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    prefetchers: Vec<StreamPrefetcher>,
    scratch_prefetches: Vec<hmm_sim_base::addr::LineAddr>,
    /// Lines the prefetcher pulled into the L3 (fill traffic towards
    /// memory that the IPC model treats as off the critical path).
    prefetch_fills: u64,
}

impl Hierarchy {
    /// Build an empty hierarchy. Panics on invalid configuration.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        Self {
            l1: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            l3: SetAssocCache::new(cfg.l3),
            prefetchers: cfg
                .prefetch
                .map(|p| (0..cfg.cores).map(|_| StreamPrefetcher::new(p)).collect())
                .unwrap_or_default(),
            scratch_prefetches: Vec::new(),
            prefetch_fills: 0,
            cfg,
        }
    }

    /// Lines pulled into the L3 by the prefetcher so far.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Shared-L3 statistics (the "LLC miss rate" of Fig. 4).
    pub fn l3_stats(&self) -> crate::set_assoc::CacheStats {
        self.l3.stats()
    }

    /// Reset all statistics (after warm-up), keeping contents.
    pub fn reset_stats(&mut self) {
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.l3.reset_stats();
    }

    /// Run one demand access from `core` through the hierarchy.
    pub fn access(&mut self, core: usize, addr: PhysAddr, is_write: bool) -> AccessResult {
        assert!(core < self.cfg.cores, "core index out of range");
        let line = addr.line();
        let mut latency = self.cfg.l1_latency;
        let mut writebacks = Vec::new();

        // L1. A dirty victim's data folds into the inclusive L3 (the line
        // is guaranteed present there), keeping write-back accounting
        // correct without cascading private-level fills.
        match self.l1[core].access(line, is_write) {
            AccessOutcome::Hit => {
                return AccessResult { level: HitLevel::L1, latency, memory: None, writebacks };
            }
            AccessOutcome::Miss(Some(v)) if v.dirty => self.l3.mark_dirty(v.line),
            AccessOutcome::Miss(_) => {}
        }

        latency += self.cfg.l2_latency;
        match self.l2[core].access(line, is_write) {
            AccessOutcome::Hit => {
                return AccessResult { level: HitLevel::L2, latency, memory: None, writebacks };
            }
            AccessOutcome::Miss(Some(v)) if v.dirty => self.l3.mark_dirty(v.line),
            AccessOutcome::Miss(_) => {}
        }

        // The prefetcher observes the L2-miss stream and pulls lines into
        // the shared L3 ahead of demand.
        if !self.prefetchers.is_empty() {
            self.scratch_prefetches.clear();
            let mut scratch = std::mem::take(&mut self.scratch_prefetches);
            self.prefetchers[core].observe(line, &mut scratch);
            for pf in scratch.drain(..) {
                if let Some(v) = self.l3.fill(pf) {
                    // An evicted dirty victim still needs its write-back.
                    let mut dirty = v.dirty;
                    for c in 0..self.cfg.cores {
                        if let Some(d) = self.l1[c].invalidate(v.line) {
                            dirty |= d;
                        }
                        if let Some(d) = self.l2[c].invalidate(v.line) {
                            dirty |= d;
                        }
                    }
                    if dirty {
                        writebacks.push(v.line);
                    }
                }
                self.prefetch_fills += 1;
            }
            self.scratch_prefetches = scratch;
        }

        latency += self.cfg.l3_latency;
        match self.l3.access(line, is_write) {
            AccessOutcome::Hit => {
                AccessResult { level: HitLevel::L3, latency, memory: None, writebacks }
            }
            AccessOutcome::Miss(victim) => {
                if let Some(v) = victim {
                    // Inclusive L3: evicting a line expels it from every
                    // private cache. A dirty private copy makes the
                    // write-back mandatory.
                    let mut dirty = v.dirty;
                    for c in 0..self.cfg.cores {
                        if let Some(d) = self.l1[c].invalidate(v.line) {
                            dirty |= d;
                        }
                        if let Some(d) = self.l2[c].invalidate(v.line) {
                            dirty |= d;
                        }
                    }
                    if dirty {
                        writebacks.push(v.line);
                    }
                }
                AccessResult {
                    level: HitLevel::Memory,
                    latency,
                    memory: Some(MemRequest { line, is_write }),
                    writebacks,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        // Small enough to force evictions quickly.
        Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheConfig::new(256, 2),
            l1_latency: 2,
            l2: CacheConfig::new(512, 2),
            l2_latency: 5,
            l3: CacheConfig::new(1024, 2),
            l3_latency: 25,
            prefetch: None,
        })
    }

    fn addr(line: u64) -> PhysAddr {
        PhysAddr(line * 64)
    }

    #[test]
    fn paper_config_shapes() {
        let h = Hierarchy::new(HierarchyConfig::paper_default());
        assert_eq!(h.config().l3.sets(), 8192);
        assert_eq!(h.config().cores, 4);
    }

    #[test]
    fn first_access_misses_to_memory_then_l1_hits() {
        let mut h = tiny();
        let r = h.access(0, addr(1), false);
        assert_eq!(r.level, HitLevel::Memory);
        assert!(r.memory.is_some());
        assert_eq!(r.latency, 2 + 5 + 25);
        let r2 = h.access(0, addr(1), false);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, 2);
    }

    #[test]
    fn sibling_core_hits_in_shared_l3() {
        let mut h = tiny();
        h.access(0, addr(1), false);
        let r = h.access(1, addr(1), false);
        assert_eq!(r.level, HitLevel::L3);
        assert_eq!(r.latency, 2 + 5 + 25);
    }

    #[test]
    fn l3_eviction_back_invalidates_private_copies() {
        let mut h = tiny();
        // L3: 1024 B, 2-way, 64 B lines -> 8 sets; lines k, k+8, k+16 share
        // a set.
        h.access(0, addr(1), false);
        h.access(0, addr(9), false);
        // Third conflicting line evicts one of them from L3 -> must also
        // leave the L1.
        h.access(0, addr(17), false);
        let in_l3_1 = h.l3.contains(hmm_sim_base::addr::LineAddr(1));
        let in_l1_1 = h.l1[0].contains(hmm_sim_base::addr::LineAddr(1));
        assert!(!in_l1_1 || in_l3_1, "inclusion violated: line 1 in L1 but not in L3");
    }

    #[test]
    fn dirty_l1_copy_forces_writeback_on_l3_eviction() {
        let mut h = tiny();
        h.access(0, addr(1), true); // dirty in L1 (and allocated everywhere)
        h.access(0, addr(9), false);
        let r = h.access(0, addr(17), false); // evicts line 1 or 9 from L3
        let evicted_dirty = !r.writebacks.is_empty();
        // Line 1 is the LRU victim in L3 set 1; it was dirty in L1.
        assert!(evicted_dirty, "expected a write-back from the dirty private copy");
        assert_eq!(r.writebacks[0], hmm_sim_base::addr::LineAddr(1));
    }

    #[test]
    fn memory_requests_only_on_l3_miss() {
        let mut h = tiny();
        let r1 = h.access(0, addr(1), false);
        assert!(r1.memory.is_some());
        let r2 = h.access(0, addr(1), false);
        assert!(r2.memory.is_none());
        let r3 = h.access(1, addr(1), false);
        assert!(r3.memory.is_none(), "L3 hit needs no memory access");
    }

    #[test]
    fn l3_miss_rate_tracks_working_set() {
        let mut h = Hierarchy::new(HierarchyConfig::paper_default().with_l3_capacity(1 << 20));
        // Working set of 4 MB streamed four times: should miss heavily in a
        // 1 MB L3.
        let lines = (4 << 20) / 64;
        for _ in 0..4 {
            for l in 0..lines {
                h.access((l % 4) as usize, addr(l), false);
            }
        }
        assert!(h.l3_stats().miss_rate() > 0.9);

        // The same working set in an 8 MB L3: exactly the cold misses
        // (one per distinct line), nothing recurring.
        let mut big = Hierarchy::new(HierarchyConfig::paper_default());
        for _ in 0..4 {
            for l in 0..lines {
                big.access((l % 4) as usize, addr(l), false);
            }
        }
        assert_eq!(big.l3_stats().misses(), lines);
    }

    #[test]
    #[should_panic(expected = "core index")]
    fn rejects_bad_core_index() {
        let mut h = tiny();
        h.access(5, addr(0), false);
    }

    #[test]
    fn prefetcher_cuts_streaming_l3_misses() {
        let stream = |prefetch: Option<crate::prefetch::PrefetchConfig>| -> f64 {
            let mut h = Hierarchy::new(HierarchyConfig {
                l3: CacheConfig::new(1 << 20, 16),
                prefetch,
                ..HierarchyConfig::paper_default()
            });
            // A long unit-stride stream (every line distinct).
            for l in 0..40_000u64 {
                h.access(0, addr(l), false);
            }
            h.l3_stats().miss_rate()
        };
        let without = stream(None);
        let with = stream(Some(crate::prefetch::PrefetchConfig::default()));
        assert!(without > 0.9, "a pure stream misses everywhere: {without}");
        assert!(
            with < without * 0.5,
            "the stream prefetcher must absorb most stream misses: {with} vs {without}"
        );
    }

    #[test]
    fn prefetcher_counts_fill_traffic() {
        let mut h = Hierarchy::new(HierarchyConfig {
            prefetch: Some(crate::prefetch::PrefetchConfig::default()),
            ..HierarchyConfig::paper_default()
        });
        for l in 0..1_000u64 {
            h.access(0, addr(l), false);
        }
        assert!(h.prefetch_fills() > 500, "fills: {}", h.prefetch_fills());
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut h = tiny();
        h.access(0, addr(1), false);
        h.reset_stats();
        assert_eq!(h.l3_stats().accesses, 0);
    }
}
