//! A stream prefetcher (Section V-A of the paper notes that "stream
//! pre-fetchers are ... commonly used in many processors" and that the
//! heterogeneous-memory work is orthogonal to them; this module lets the
//! simulator demonstrate that orthogonality).
//!
//! The design is the classic per-core stride detector: a small table of
//! recently observed streams; when three accesses continue the same
//! stride, the stream is confirmed and the prefetcher runs `degree` lines
//! ahead of the demand front.

use hmm_sim_base::addr::LineAddr;

/// Prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Stream table entries per core.
    pub streams: usize,
    /// Lines fetched ahead of a confirmed stream.
    pub degree: u32,
    /// Accesses with the same stride required to confirm a stream.
    pub confirm: u32,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self { streams: 8, degree: 4, confirm: 2 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    last_line: i64,
    stride: i64,
    confidence: u32,
    /// Next line the prefetcher would fetch for this stream.
    next_fetch: i64,
    valid: bool,
}

/// Per-core stream prefetcher. Feed it the demand line stream; it returns
/// the lines to prefetch.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: PrefetchConfig,
    table: Vec<StreamEntry>,
    /// Round-robin victim pointer.
    victim: usize,
    issued: u64,
    useful_hint: u64,
}

impl StreamPrefetcher {
    /// Build a prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(cfg.streams > 0 && cfg.degree > 0 && cfg.confirm > 0);
        Self {
            table: vec![StreamEntry::default(); cfg.streams],
            victim: 0,
            issued: 0,
            useful_hint: 0,
            cfg,
        }
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Observe one demand access; append the lines to prefetch to `out`.
    pub fn observe(&mut self, line: LineAddr, out: &mut Vec<LineAddr>) {
        let l = line.0 as i64;

        // Find a stream this access continues (within a small window of
        // its predicted position, tolerating reordering).
        let mut matched = None;
        for (i, e) in self.table.iter_mut().enumerate() {
            if !e.valid {
                continue;
            }
            let delta = l - e.last_line;
            if delta == e.stride && delta != 0 {
                e.confidence += 1;
                e.last_line = l;
                matched = Some(i);
                break;
            }
            if delta != 0 && delta.abs() <= 256 && e.confidence == 0 {
                // Second nearby touch of a tentative stream: adopt the
                // stride. The distance guard keeps unrelated streams from
                // capturing each other's tentative entries.
                e.stride = delta;
                e.confidence = 1;
                e.last_line = l;
                matched = Some(i);
                break;
            }
        }

        match matched {
            Some(i) => {
                let cfg = self.cfg;
                let e = &mut self.table[i];
                if e.confidence >= cfg.confirm {
                    let behind = if e.stride > 0 {
                        e.next_fetch <= e.last_line
                    } else {
                        e.next_fetch >= e.last_line
                    };
                    if behind {
                        e.next_fetch = e.last_line + e.stride;
                    }
                    // Run up to `degree` lines ahead of the demand front.
                    let ahead_limit = e.last_line + e.stride * (cfg.degree as i64 + 1);
                    while (e.stride > 0 && e.next_fetch < ahead_limit)
                        || (e.stride < 0 && e.next_fetch > ahead_limit)
                    {
                        if e.next_fetch >= 0 {
                            out.push(LineAddr(e.next_fetch as u64));
                            self.issued += 1;
                        }
                        e.next_fetch += e.stride;
                    }
                    self.useful_hint += 1;
                }
            }
            None => {
                // Allocate a tentative stream over the round-robin victim.
                let v = self.victim;
                self.victim = (self.victim + 1) % self.table.len();
                self.table[v] = StreamEntry {
                    last_line: l,
                    stride: 0,
                    confidence: 0,
                    next_fetch: l,
                    valid: true,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(p: &mut StreamPrefetcher, lines: impl IntoIterator<Item = u64>) -> Vec<u64> {
        let mut out = Vec::new();
        for l in lines {
            p.observe(LineAddr(l), &mut out);
        }
        out.into_iter().map(|l| l.0).collect()
    }

    #[test]
    fn detects_unit_stride_and_runs_ahead() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let fetched = feed(&mut p, 100..110);
        assert!(!fetched.is_empty(), "a confirmed stream must prefetch");
        // Everything prefetched is ahead of the stream.
        assert!(fetched.iter().all(|&l| l > 101));
        // And covers the demand front's future.
        assert!(fetched.contains(&110) || fetched.contains(&111));
    }

    #[test]
    fn detects_large_strides() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let fetched = feed(&mut p, (0..10).map(|i| 1000 + i * 16));
        assert!(!fetched.is_empty());
        assert!(fetched.iter().all(|&l| (l - 1000) % 16 == 0), "{fetched:?}");
    }

    #[test]
    fn detects_negative_strides() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let fetched = feed(&mut p, (0..10).map(|i| 1000 - i * 2));
        assert!(!fetched.is_empty());
        assert!(fetched.iter().all(|&l| l < 1000));
    }

    #[test]
    fn random_traffic_prefetches_little() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let mut rng = hmm_sim_base::SimRng::new(9);
        let lines: Vec<u64> = (0..500).map(|_| rng.below(1 << 24)).collect();
        let fetched = feed(&mut p, lines);
        assert!(
            (fetched.len() as f64) < 100.0,
            "random traffic should rarely confirm streams, issued {}",
            fetched.len()
        );
    }

    #[test]
    fn interleaved_streams_both_tracked() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let mut seq = Vec::new();
        for i in 0..12u64 {
            seq.push(1000 + i);
            seq.push(900_000 + i * 8);
        }
        let fetched = feed(&mut p, seq);
        let near_a = fetched.iter().filter(|&&l| (1000..1100).contains(&l)).count();
        let near_b = fetched.iter().filter(|&&l| l >= 900_000).count();
        assert!(near_a > 0, "stream A not tracked: {fetched:?}");
        assert!(near_b > 0, "stream B not tracked: {fetched:?}");
    }

    #[test]
    fn no_duplicate_prefetches_for_one_stream() {
        let mut p = StreamPrefetcher::new(PrefetchConfig::default());
        let fetched = feed(&mut p, 0..100);
        let mut dedup = fetched.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), fetched.len(), "prefetcher re-fetched lines");
    }
}
