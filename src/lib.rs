//! # hetero-mem — heterogeneous main memory with on-chip controller support
//!
//! Facade crate for the reproduction of Dong, Xie, Muralimanohar and Jouppi,
//! *"Simple but Effective Heterogeneous Main Memory with On-Chip Memory
//! Controller Support"* (SC 2010). It re-exports the public API of every
//! subsystem crate so applications can depend on a single crate:
//!
//! * [`base`] — cycles, addresses, configuration, statistics.
//! * [`dram`] — the DDR3 timing model with FR-FCFS scheduling.
//! * [`cache`] — SRAM cache hierarchy and the tags-in-DRAM L4 cache.
//! * [`workloads`] — synthetic trace generators for the paper's workloads.
//! * [`core`] — the paper's contribution: the heterogeneity-aware memory
//!   controller with its translation table and migration engine.
//! * [`fault`] — deterministic fault injection: seeded fault plans,
//!   SECDED ECC outcomes, stuck banks, throttle windows, transfer faults.
//! * [`simulator`] — trace-driven system simulation and experiment sweeps.
//! * [`power`] — the pJ/bit energy model.
//! * [`serve`] — the concurrent simulation-serving subsystem: HTTP API,
//!   bounded job queue, worker pool, deterministic result cache.
//! * [`telemetry`] — cross-layer event tracing, counters and exporters
//!   (JSONL, Chrome `trace_event`, per-epoch CSV).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use hmm_cache as cache;
pub use hmm_core as core;
pub use hmm_dram as dram;
pub use hmm_fault as fault;
pub use hmm_power as power;
pub use hmm_serve as serve;
pub use hmm_sim_base as base;
pub use hmm_simulator as simulator;
pub use hmm_telemetry as telemetry;
pub use hmm_workloads as workloads;
